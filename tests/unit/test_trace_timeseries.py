"""Unit tests for tracing, time-series sampling and failure injection."""

import pytest

from repro.analysis.timeseries import Sampler, Series, watch_switch_queues
from repro.experiments.common import build_network
from repro.net.failures import FailureInjector
from repro.sim import trace
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecord, Tracer


class TestTracer:
    def teardown_method(self):
        trace.install(None)

    def test_disabled_by_default(self):
        assert trace.active() is None
        trace.emit(0, "tx", "x")  # must be a silent no-op

    def test_records_collected(self):
        tracer = Tracer()
        trace.install(tracer)
        trace.emit(10, "trim", "leaf0", flow_id=3, psn=7)
        trace.emit(20, "drop", "leaf0", flow_id=4, psn=1, reason="forced")
        assert len(tracer.records) == 2
        assert tracer.by_category("trim")[0].detail["psn"] == 7

    def test_category_filter(self):
        tracer = Tracer(categories={"trim"})
        trace.install(tracer)
        trace.emit(0, "trim", "x", flow_id=1)
        trace.emit(0, "drop", "x", flow_id=1)
        assert [r.category for r in tracer.records] == ["trim"]

    def test_flow_filter_and_timeline(self):
        tracer = Tracer(flow_ids={5})
        trace.install(tracer)
        trace.emit(0, "trim", "x", flow_id=5)
        trace.emit(1, "trim", "x", flow_id=6)
        assert len(tracer.flow_timeline(5)) == 1
        assert tracer.flow_timeline(6) == []

    def test_max_records_bound(self):
        tracer = Tracer(max_records=2)
        trace.install(tracer)
        for i in range(5):
            trace.emit(i, "tx", "x")
        assert len(tracer.records) == 2
        assert tracer.dropped_records == 3

    def test_switch_emits_trim_records(self):
        tracer = Tracer(categories={"trim"})
        trace.install(tracer)
        net = build_network(transport="dcp", topology="clos", num_hosts=8,
                            num_leaves=2, num_spines=2, link_rate=10.0,
                            lb="ar", seed=3, buffer_bytes=300_000)
        flows = [net.open_flow(s, 7, 60_000, 0) for s in range(4)]
        net.run_until_flows_done(max_events=20_000_000)
        assert all(f.completed for f in flows)
        trims = net.fabric.switch_stats_sum("trimmed")
        assert len(tracer.records) == trims > 0

    def test_format(self):
        tracer = Tracer()
        trace.install(tracer)
        trace.emit(100, "trim", "leaf0", psn=1)
        assert "trim" in tracer.format()

    def test_format_category_filter(self):
        tracer = Tracer()
        trace.install(tracer)
        trace.emit(0, "trim", "leaf0", psn=1)
        trace.emit(1, "drop", "leaf0", psn=2)
        out = tracer.format(category="drop")
        assert "drop" in out and "trim" not in out

    def test_format_tail_shows_newest_records(self):
        tracer = Tracer()
        trace.install(tracer)
        for i in range(10):
            trace.emit(i, "tx", "x", psn=i)
        head = tracer.format(limit=3)
        tail = tracer.format(limit=3, tail=True)
        assert "psn=0" in head and "psn=9" not in head
        assert "psn=9" in tail and "psn=0" not in tail
        assert "7 more records" in head
        assert "7 earlier records" in tail

    def test_format_reports_capture_time_drops(self):
        tracer = Tracer(max_records=2)
        trace.install(tracer)
        for i in range(5):
            trace.emit(i, "tx", "x")
        out = tracer.format()
        assert "3 records dropped at capture" in out
        assert "max_records=2" in out

    def test_format_footer_drops_are_capture_wide_not_filter_scoped(self):
        """The drop footer counts capture-time drops, which happen
        before any view filter — a category-filtered listing must say
        so (same number, 'across all categories') instead of implying
        the drops belonged to the filtered category."""
        tracer = Tracer(max_records=3)
        trace.install(tracer)
        trace.emit(0, "rare", "x")
        for i in range(6):
            trace.emit(i, "tx", "x")          # 2 kept, 4 dropped
        out = tracer.format(category="rare")
        assert "4 records dropped at capture" in out
        assert "across all categories" in out

    def test_format_header_names_the_active_filter(self):
        tracer = Tracer()
        trace.install(tracer)
        trace.emit(0, "rare", "x")
        for i in range(5):
            trace.emit(i, "tx", "x")
        out = tracer.format(category="rare")
        assert "[category=rare: 1 of 6 captured records]" in out
        assert "[category=" not in tracer.format()   # no filter, no header

    def test_category_and_flow_indexes_match_linear_scan(self):
        tracer = Tracer()
        trace.install(tracer)
        for i in range(50):
            trace.emit(i, "tx" if i % 3 else "drop", "x", flow_id=i % 4)
        for cat in ("tx", "drop", "absent"):
            assert tracer.by_category(cat) == [
                r for r in tracer.records if r.category == cat]
        for fid in (0, 1, 2, 3, 99):
            assert tracer.flow_timeline(fid) == [
                r for r in tracer.records
                if r.detail.get("flow_id") == fid]

    def test_by_category_is_indexed_not_a_records_scan(self):
        """Looking up 10 rare records among 200k bulk ones must not pay
        for the bulk: the emit-time index makes by_category O(result).
        Pinned against an inline linear scan with a generous margin
        (best of 3 to shrug off scheduler noise)."""
        import timeit
        tracer = Tracer()
        trace.install(tracer)
        for i in range(200_000):
            trace.emit(i, "bulk", "x", flow_id=1)
        for i in range(10):
            trace.emit(i, "rare", "x", flow_id=2)

        def linear_scan():
            return [r for r in tracer.records if r.category == "rare"]

        assert tracer.by_category("rare") == linear_scan()
        indexed_t = min(timeit.repeat(
            lambda: tracer.by_category("rare"), number=20, repeat=3))
        scan_t = min(timeit.repeat(linear_scan, number=20, repeat=3))
        assert indexed_t * 5 < scan_t, (
            f"by_category no faster than a records scan "
            f"({indexed_t:.6f}s vs {scan_t:.6f}s)")


class TestSeries:
    def test_stats(self):
        s = Series("q")
        for t, v in ((0, 0.0), (10, 10.0), (20, 0.0)):
            s.append(t, v)
        assert s.max() == 10.0
        assert s.mean() == pytest.approx(10 / 3)
        assert s.last() == 0.0
        assert s.integral() == pytest.approx(100.0)

    def test_empty(self):
        s = Series("q")
        assert s.max() == 0.0 and s.mean() == 0.0 and s.integral() == 0.0


class TestSampler:
    def test_samples_at_interval(self):
        sim = Simulator()
        state = {"v": 0}
        sampler = Sampler(sim, interval_ns=100)
        series = sampler.watch("v", lambda: state["v"])
        sampler.start(until_ns=1_000)
        sim.schedule(450, lambda: state.__setitem__("v", 7))
        sim.run(until=2_000)
        assert len(series.times_ns) == 11  # t=0..1000 inclusive
        assert series.values[0] == 0
        assert series.values[-1] == 7

    def test_watch_switch_queues(self):
        net = build_network(transport="dcp", topology="clos", num_hosts=8,
                            num_leaves=2, num_spines=2, link_rate=10.0,
                            lb="ar", seed=3, buffer_bytes=300_000)
        sampler = Sampler(net.sim, interval_ns=5_000)
        watch_switch_queues(sampler, net.fabric.switches[0], ports=[0, 1])
        sampler.start(until_ns=500_000)
        flows = [net.open_flow(s, 0, 60_000, 0) for s in (1, 2, 3, 4)]
        net.run_until_flows_done(max_events=20_000_000)
        data_series = sampler.series["leaf0.p0.data"]
        assert data_series.max() > 0  # the incast built a queue

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            Sampler(Simulator(), interval_ns=0)

    def test_unbounded_sampler_goes_dormant_when_sim_drains(self):
        # start() without until_ns must not keep the heap alive forever:
        # a run-to-empty simulation has to terminate shortly after the
        # last real event instead of sampling until max_events.
        sim = Simulator()
        state = {"v": 0}
        sampler = Sampler(sim, interval_ns=100)
        series = sampler.watch("v", lambda: state["v"])
        sampler.start()
        sim.schedule(450, lambda: state.__setitem__("v", 7))
        sim.run(max_events=1_000_000)
        assert sim.peek_time() is None  # heap fully drained
        assert series.times_ns[-1] <= 550  # one tick past the last event
        assert series.values[-1] == 7


class TestFailureInjector:
    def test_link_failure_and_recovery(self):
        net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                            cross_links=1, link_rate=10.0, lb="ecmp", seed=3,
                            transport_overrides={"coarse_timeout_ns": 200_000})
        injector = FailureInjector(net.sim)
        sw1 = net.fabric.switches[0]
        event = injector.fail_link(sw1, 2, at_ns=30_000,
                                   recover_at_ns=500_000)
        flow = net.open_flow(0, 2, 200_000, 0)
        net.run_until_flows_done(max_events=20_000_000)
        assert flow.completed
        assert event.kind == "link"
        assert sw1.ports[2].link.up

    def test_routing_convergence_removes_port(self):
        net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                            cross_links=2, link_rate=10.0, lb="ecmp", seed=3)
        injector = FailureInjector(net.sim)
        sw1 = net.fabric.switches[0]
        injector.fail_link(sw1, 3, at_ns=0, recover_at_ns=100_000,
                           converge_routing=True)
        net.sim.run(until=50_000)
        assert all(3 not in ports or len(ports) == 1
                   for ports in sw1.routing_table.values())
        net.sim.run(until=200_000)
        assert any(3 in ports for ports in sw1.routing_table.values())

    def test_switch_blackout(self):
        net = build_network(transport="dcp", topology="clos", num_hosts=8,
                            num_leaves=2, num_spines=2, link_rate=10.0,
                            lb="ar", seed=3,
                            transport_overrides={"coarse_timeout_ns": 200_000})
        injector = FailureInjector(net.sim)
        spine = net.fabric.switches[2]
        injector.fail_switch(spine, at_ns=10_000, recover_at_ns=800_000)
        flow = net.open_flow(0, 7, 150_000, 0)
        net.run_until_flows_done(max_events=20_000_000)
        assert flow.completed

    def test_unwired_port_rejected(self):
        sim = Simulator()
        from repro.net.routing import EcmpLoadBalancer
        from repro.net.switch import Switch, SwitchConfig
        sw = Switch(sim, 0, SwitchConfig(num_ports=2), EcmpLoadBalancer())
        with pytest.raises(ValueError):
            FailureInjector(sim).fail_link(sw, 0, at_ns=0)
