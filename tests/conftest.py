"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.experiments.common import Network, NetworkSpec
from repro.rnic.base import (Flow, Host, HostNic, RnicTransport,
                             TransportConfig)
from repro.net.topology import build_direct
from repro.sim.engine import Simulator


def make_direct_pair(transport_cls, config: TransportConfig | None = None,
                     rate: float = 100.0, prop_delay_ns: int = 500):
    """Two hosts of ``transport_cls`` connected back-to-back.

    Returns (sim, fabric, transport_a, transport_b).
    """
    sim = Simulator()
    cfg = config or TransportConfig()
    hosts, transports = [], []
    for hid in range(2):
        nic = HostNic(sim, rate, name=f"nic{hid}")
        tr = transport_cls(sim, hid, cfg)
        hosts.append(Host(sim, hid, nic, tr))
        transports.append(tr)
    fabric = build_direct(sim, hosts[0], hosts[1],
                          prop_delay_ns=prop_delay_ns, rate=rate)
    return sim, fabric, transports[0], transports[1]


def send_flow(sim, src_transport, dst_transport, size_bytes: int,
              start_ns: int = 0, qp=None) -> Flow:
    """Open a QP (unless given) and post one flow; returns the Flow."""
    if qp is None:
        qp, _ = RnicTransport.connect(src_transport, dst_transport)
    flow = Flow(src_transport.host_id, dst_transport.host_id, size_bytes,
                start_ns)
    dst_transport.expect_flow(flow)
    sim.schedule(max(0, start_ns - sim.now),
                 lambda: src_transport.post_flow(qp, flow))
    return flow


def drain(sim, max_events: int = 20_000_000) -> None:
    sim.run(max_events=max_events)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


def small_network(**overrides) -> Network:
    """A fast 8-host CLOS network for integration tests."""
    defaults = dict(transport="dcp", lb="ar", topology="clos", num_hosts=8,
                    num_leaves=2, num_spines=2, link_rate=10.0, seed=3,
                    buffer_bytes=1_000_000)
    defaults.update(overrides)
    return Network(NetworkSpec(**defaults))
