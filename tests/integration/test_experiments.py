"""Integration: the experiment registry and quick-preset runs."""

import pytest

from repro.experiments.registry import REGISTRY, run_experiment
from repro.experiments.result import ExperimentResult


def test_registry_covers_every_paper_result():
    expected = {"table1", "table2", "table3", "table4", "table5",
                "fig1", "fig2", "fig7", "fig8", "fig10", "fig11", "fig12",
                "fig13", "fig14", "fig15", "fig16", "fig17", "robustness",
                "longhaul", "deepdive", "scale"}
    assert set(REGISTRY) == expected


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError):
        run_experiment("fig99")


@pytest.mark.parametrize("key", ["table1", "table2", "table3", "table4",
                                 "fig7"])
def test_analytic_experiments_run_instantly(key):
    result = run_experiment(key)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.format_table()


def test_table1_shape():
    result = run_experiment("table1")
    assert len(result.rows) == 6
    km = result.column("max_km_1_queue")
    assert all(2.0 < v < 6.0 for v in km)


def test_fig7_shape():
    result = run_experiment("fig7")
    dcp = result.column("dcp_mpps")
    chunk = result.column("linked_chunk_mpps")
    assert len(set(dcp)) == 1          # flat
    assert chunk[0] > chunk[-1]        # decaying


def test_fig8_quick():
    result = run_experiment("fig8", preset="quick")
    by = {r["scheme"]: r for r in result.rows}
    assert by["dcp"]["throughput_gbps"] > 5 * by["tcp"]["throughput_gbps"]
    assert by["tcp"]["latency_us"] > 5 * by["dcp"]["latency_us"]
    assert by["dcp"]["throughput_gbps"] > 0.9 * by["gbn"]["throughput_gbps"]


def test_fig10_quick_shape():
    result = run_experiment("fig10", preset="quick")
    worst = result.rows[-1]            # 5% loss
    assert worst["dcp_over_cx5"] > 5.0
    clean = result.rows[0]
    assert 0.8 < clean["dcp_over_cx5"] < 1.25


def test_result_table_formatting():
    r = ExperimentResult("x", "demo",
                         rows=[{"a": 1, "b": 2.5}, {"a": 3, "c": "z"}])
    text = r.format_table()
    assert "demo" in text and "2.5" in text and "z" in text
    assert r.columns() == ["a", "b", "c"]
    assert r.row_by("a", 3)["c"] == "z"
    with pytest.raises(KeyError):
        r.row_by("a", 99)


def test_cli_list(capsys):
    from repro.experiments.cli import main
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig13" in out and "table5" in out
