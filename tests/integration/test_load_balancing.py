"""Integration: load-balancing schemes compared end-to-end (§8)."""

from repro.analysis.fct import goodput_gbps
from repro.experiments.common import build_network


def _single_flow_goodput(lb: str, transport: str = "dcp",
                         size: int = 800_000) -> tuple[float, list[int]]:
    net = build_network(transport=transport, topology="testbed", num_hosts=4,
                        cross_links=4, link_rate=10.0, lb=lb, seed=19,
                        cc="window", window_bytes=120_000)
    flow = net.open_flow(0, 2, size, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed, lb
    sw1 = net.fabric.switches[0]
    cross_tx = [sw1.ports[2 + c].tx_packets for c in range(4)]
    return goodput_gbps(flow), cross_tx


def test_spray_uses_all_paths():
    _g, cross_tx = _single_flow_goodput("spray")
    used = sum(1 for t in cross_tx if t > 50)
    assert used == 4, f"spray used only {used} paths: {cross_tx}"


def test_ar_spreads_under_contention():
    """AR follows queue depth: with cross links slower than the source,
    queues build and packets fan out; with idle equal paths it correctly
    stays put (no gratuitous reordering)."""
    net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                        cross_links=4, link_rate=10.0, lb="ar", seed=19,
                        cc="window", window_bytes=120_000,
                        cross_port_rates={i: 3.0 for i in range(4)})
    flow = net.open_flow(0, 2, 800_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    sw1 = net.fabric.switches[0]
    cross_tx = [sw1.ports[2 + c].tx_packets for c in range(4)]
    used = sum(1 for t in cross_tx if t > 50)
    assert used >= 3, f"ar used only {used} paths: {cross_tx}"
    # uncongested case: one path, deterministically
    _g, idle_tx = _single_flow_goodput("ar")
    assert sum(1 for t in idle_tx if t > 50) == 1


def test_flow_level_lbs_stick_to_one_path():
    for lb in ("ecmp", "flowlet"):
        _g, cross_tx = _single_flow_goodput(lb)
        used = sum(1 for t in cross_tx if t > 50)
        assert used == 1, f"{lb} spread over {used} paths: {cross_tx}"


def test_flowlet_smooth_rdma_flow_never_switches():
    """§8: RDMA flows lack the idle gaps flowlet switching needs."""
    net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                        cross_links=2, link_rate=10.0, lb="flowlet", seed=19,
                        cc="window")
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    lbs = [sw.lb for sw in net.fabric.switches]
    assert sum(lb.flowlet_switches for lb in lbs) == 0


def test_ecmp_collision_hurts_where_ar_does_not():
    """Two flows, two cross links: a colliding ECMP hash halves goodput;
    AR always balances.  (Statistically, some seed collides.)"""
    collided_seed = None
    for seed in range(20):
        net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                            cross_links=2, link_rate=10.0, lb="ecmp",
                            seed=seed, cc="window")
        f1 = net.open_flow(0, 2, 400_000, 0)
        f2 = net.open_flow(1, 3, 400_000, 0)
        net.run_until_flows_done(max_events=30_000_000)
        total = goodput_gbps(f1) + goodput_gbps(f2)
        if total < 13.0:  # both flows squeezed through one 10G link
            collided_seed = seed
            break
    assert collided_seed is not None, "no ECMP collision in 20 seeds?!"

    net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                        cross_links=2, link_rate=10.0, lb="ar",
                        seed=collided_seed, cc="window")
    f1 = net.open_flow(0, 2, 400_000, 0)
    f2 = net.open_flow(1, 3, 400_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert goodput_gbps(f1) + goodput_gbps(f2) > 13.0
