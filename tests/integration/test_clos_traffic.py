"""Integration: mixed workloads across the CLOS fabric, all transports."""

import pytest

from repro.experiments.common import build_network
from repro.workload.distributions import websearch
from repro.workload.flows import IncastWorkload, PoissonWorkload

TRANSPORT_LB = [("dcp", "ar"), ("irn", "ar"), ("irn", "ecmp"),
                ("gbn", "ecmp"), ("mp_rdma", "ecmp"),
                ("rack_tlp", "ecmp"), ("timeout", "ecmp")]


@pytest.mark.parametrize("transport,lb", TRANSPORT_LB)
def test_websearch_all_flows_complete(transport, lb):
    net = build_network(transport=transport, lb=lb, topology="clos",
                        num_hosts=8, num_leaves=2, num_spines=2,
                        link_rate=10.0, seed=71, buffer_bytes=2_000_000)
    wl = PoissonWorkload(load=0.3, size_dist=websearch(scale=50),
                         duration_ns=1_000_000, seed=71, max_flows=60)
    flows = wl.generate(net)
    assert len(flows) > 10
    net.run_until_flows_done(max_events=60_000_000)
    incomplete = [f for f in flows if not f.completed]
    assert not incomplete, f"{transport}/{lb}: {len(incomplete)} stuck flows"
    for f in flows:
        assert f.rx_bytes == f.size_bytes


def test_incast_under_dcp_completes_without_timeouts():
    net = build_network(transport="dcp", lb="ar", topology="clos",
                        num_hosts=16, num_leaves=2, num_spines=2,
                        link_rate=10.0, seed=72, buffer_bytes=1_000_000)
    wl = IncastWorkload(load=0.1, fan_in=8, flow_bytes=20_000,
                        duration_ns=1_000_000, seed=72)
    flows = wl.generate(net)
    assert flows
    net.run_until_flows_done(max_events=60_000_000)
    assert all(f.completed for f in flows)
    # Data-packet loss never causes a DCP timeout (trims are recovered by
    # HO round trips).  The only legitimate trigger for the coarse
    # fallback is a dropped ACK — DCP ACKs are droppable by design (§4.2).
    timeouts = sum(f.stats.timeouts for f in flows)
    acks_dropped = net.fabric.switch_stats_sum("acks_dropped")
    assert timeouts <= acks_dropped
    assert net.fabric.switch_stats_sum("trimmed") > 0


def test_flow_conservation_counters():
    """Switch counters and endpoint counters must reconcile."""
    net = build_network(transport="dcp", lb="ar", topology="clos",
                        num_hosts=8, num_leaves=2, num_spines=2,
                        link_rate=10.0, seed=73, buffer_bytes=400_000)
    flows = [net.open_flow(s, 7, 100_000, 0) for s in range(4)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)
    trims = net.fabric.switch_stats_sum("trimmed")
    ho_lost = net.fabric.switch_stats_sum("ho_dropped")
    turned = sum(tr.ho_turned for tr in net.transports)
    received = sum(tr.ho_received for tr in net.transports)
    # every trim that wasn't dropped in a control queue reached the
    # receiver, was turned around, and (minus in-flight none, since the
    # run drained) reached the sender
    assert turned <= trims
    assert received <= turned
    assert trims - turned <= ho_lost + trims  # sanity: no double count
    retx = sum(f.stats.retx_pkts_sent for f in flows)
    timeouts = sum(f.stats.timeouts for f in flows)
    if timeouts == 0 and ho_lost == 0:
        assert retx == trims == received


def test_deterministic_given_seed():
    def run():
        net = build_network(transport="dcp", lb="ar", topology="clos",
                            num_hosts=8, num_leaves=2, num_spines=2,
                            link_rate=10.0, seed=99, buffer_bytes=1_000_000)
        wl = PoissonWorkload(load=0.3, size_dist=websearch(scale=50),
                             duration_ns=500_000, seed=99, max_flows=30)
        flows = wl.generate(net)
        net.run_until_flows_done(max_events=30_000_000)
        # flow_ids come from a process-global counter; compare by position
        return [(f.src, f.dst, f.size_bytes, f.rx_complete_ns) for f in flows]

    assert run() == run()


def test_cross_dc_delay_scaling():
    """Flows across 500 us spine links complete; RTOs scale with RTT."""
    net = build_network(transport="dcp", lb="ar", topology="clos",
                        num_hosts=8, num_leaves=2, num_spines=2,
                        link_rate=10.0, seed=74,
                        spine_link_delay_ns=500_000)
    f = net.open_flow(0, 7, 500_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert f.completed
    assert f.stats.timeouts == 0
    # one-way >= 1.002 ms, so FCT must exceed it
    assert f.fct_ns() > 1_000_000
