"""Fairness: QP scheduling and bandwidth sharing."""

import pytest

from repro.analysis.fct import goodput_gbps, jain_fairness
from repro.experiments.common import build_network


class TestJain:
    def test_perfect(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_hog(self):
        assert jain_fairness([9, 0, 0]) == pytest.approx(1 / 3)

    def test_bounds(self):
        vals = [1, 2, 3, 4]
        assert 1 / len(vals) <= jain_fairness(vals) <= 1.0

    def test_empty(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_all_zero(self):
        assert jain_fairness([0, 0]) == 1.0


class TestQpSchedulerFairness:
    def test_concurrent_qps_share_the_nic(self):
        """The DRR QP scheduler (round_quota) splits one NIC evenly."""
        net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                            cross_links=2, link_rate=10.0, lb="ar", seed=7,
                            window_bytes=200_000)
        # one sender, two receivers: both flows leave through host 0's NIC
        flows = [net.open_flow(0, 2, 500_000, 0),
                 net.open_flow(0, 3, 500_000, 0)]
        net.run_until_flows_done(max_events=30_000_000)
        assert all(f.completed for f in flows)
        fcts = [f.fct_ns() for f in flows]
        # fair sharing: both finish within ~15% of each other
        assert max(fcts) / min(fcts) < 1.15

    def test_incast_receivers_share_fairly(self):
        """Four equal senders into one port finish near-simultaneously."""
        net = build_network(transport="dcp", topology="clos", num_hosts=8,
                            num_leaves=2, num_spines=2, link_rate=10.0,
                            lb="ar", seed=7, buffer_bytes=1_000_000)
        flows = [net.open_flow(s, 7, 150_000, 0) for s in (0, 1, 2, 3)]
        net.run_until_flows_done(max_events=30_000_000)
        assert all(f.completed for f in flows)
        goodputs = [goodput_gbps(f) for f in flows]
        assert jain_fairness(goodputs) > 0.9

    def test_short_flow_not_starved_by_elephant(self):
        """A mouse posted mid-elephant finishes promptly (DRR quota)."""
        net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                            cross_links=2, link_rate=10.0, lb="ar", seed=7,
                            window_bytes=200_000)
        elephant = net.open_flow(0, 2, 3_000_000, 0)
        mouse = net.open_flow(0, 3, 20_000, 200_000)
        net.run_until_flows_done(max_events=30_000_000)
        assert mouse.completed and elephant.completed
        # the mouse's FCT is bounded by ~2x its fair-share time, far
        # below the elephant's multi-ms occupation of the NIC
        assert mouse.fct_ns() < elephant.fct_ns() / 5
