"""Dynamic verification of Table 2's R1-R4 claims for DCP.

Each requirement is exercised end-to-end in the simulator rather than
asserted statically.
"""

from repro.experiments.common import build_network


def test_r1_no_pfc_dependence():
    """R1: DCP fabrics run without PFC and still deliver everything."""
    net = build_network(transport="dcp", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0, lb="ar",
                        seed=61, buffer_bytes=500_000)
    assert all(sw.pfc is None for sw in net.fabric.switches)
    # burst enough traffic to congest the tiny buffer
    flows = [net.open_flow(s, 7, 150_000, 0) for s in range(4)]
    net.run_until_flows_done(max_events=30_000_000)
    assert all(f.completed for f in flows)
    assert net.fabric.switch_stats_sum("trimmed") > 0  # it really congested


def test_r2_packet_level_lb_compatibility():
    """R2: per-packet spraying causes zero spurious retransmissions."""
    net = build_network(transport="dcp", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0,
                        lb="spray", seed=62, buffer_bytes=8_000_000,
                        trim_threshold_bytes=8_000_000)
    flows = [net.open_flow(i, (i + 4) % 8, 200_000, 0) for i in range(4)]
    net.run_until_flows_done(max_events=30_000_000)
    assert all(f.completed for f in flows)
    assert sum(f.stats.retx_pkts_sent for f in flows) == 0


def test_r3_no_rto_for_any_loss():
    """R3: heavy congestion loss recovered entirely without RTOs."""
    net = build_network(transport="dcp", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0, lb="ar",
                        seed=63, buffer_bytes=400_000)
    flows = [net.open_flow(s, 7, 100_000, 0) for s in range(5)]
    net.run_until_flows_done(max_events=30_000_000)
    assert all(f.completed for f in flows)
    assert net.fabric.switch_stats_sum("trimmed") > 0
    assert sum(f.stats.timeouts for f in flows) == 0


def test_r4_memory_overhead_is_logarithmic():
    """R4: receiver tracking state stays tiny regardless of BDP."""
    from repro.core.tracking import BdpBitmapTracker, CounterTracker
    dcp = CounterTracker(tracked_messages=8)
    bitmap = BdpBitmapTracker(window_pkts=2560)
    assert dcp.memory_bits * 10 < bitmap.memory_bits


def test_r1_vs_gbn_contrast():
    """Without PFC the GBN baseline degrades where DCP does not."""
    fcts = {}
    for scheme in ("dcp", "gbn"):
        net = build_network(transport=scheme, topology="testbed",
                            num_hosts=4, cross_links=1, link_rate=10.0,
                            loss_rate=0.02, lb="ecmp", seed=64)
        f = net.open_flow(0, 2, 500_000, 0)
        net.run_until_flows_done(max_events=40_000_000)
        assert f.completed
        fcts[scheme] = f.fct_ns()
    assert fcts["dcp"] < fcts["gbn"]
