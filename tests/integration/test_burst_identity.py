"""Bit-identity of the burst-mode dataplane (``REPRO_BURST``).

Burst mode only changes *how many Python calls* produce the event
stream — bulk slot scheduling, port burst drains, multi-packet
transport pulls — never the stream itself.  These tests pin that
contract across the gate matrix: burst on/off crossed with the packet
pool's on/off/debug modes, over a clean direct point, a lossy Clos
point (which exercises the NAK/RTO/fast-retransmit truncation paths),
and a chaos scenario (where the injector forces the serial slow path).

The one deliberately excluded observable is ``sim.packet_seq``: a
truncated train rolls back pre-pulled packets whose uids the serial
path never allocates, so the counter (payload-invisible by design —
uids appear in no payload, metric, or trace) may run ahead under loss.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos.scenarios import get_scenario
from repro.experiments import fig8_basic_perf as fig8
from repro.experiments import robustness
from repro.experiments.common import NetworkSpec
from repro.experiments.presets import get_preset
from repro.runner import ExperimentRunner, ResultCache
from repro.runner.points import simulate_flows

try:
    import numpy  # noqa: F401
    _HAVE_NUMPY = True
except ImportError:
    _HAVE_NUMPY = False

_needs_array = pytest.mark.skipif(
    not _HAVE_NUMPY, reason="numpy not installed ([kernel] extra)")

#: Event-kernel backends (REPRO_KERNEL) — the newest identity axis.
KERNELS = ("ref", "array")

#: sdr and rifl declare ``supports_burst = False``: under REPRO_BURST=1
#: the engine's burst poll must detect that and take the serial
#: fallback, which these matrix cells prove is payload-invisible.
TRANSPORTS = ("gbn", "dcp", "tcp", "sdr", "rifl")

#: (REPRO_BURST, REPRO_PACKET_POOL, REPRO_PACKET_POOL_DEBUG)
GATE_MATRIX = (
    ("1", "1", ""),     # burst on,  pool on (the default stack)
    ("0", "1", ""),     # burst off: PR 4 serial behaviour
    ("1", "0", ""),     # burst on,  pool off
    ("0", "0", ""),     # both off
    ("1", "1", "1"),    # burst on,  pool poison/debug mode
)


def _run(monkeypatch, burst, pool, debug, spec, params, kernel="ref"):
    monkeypatch.setenv("REPRO_BURST", burst)
    monkeypatch.setenv("REPRO_PACKET_POOL", pool)
    monkeypatch.setenv("REPRO_PACKET_POOL_DEBUG", debug)
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    payload = simulate_flows(spec, params)
    # Canonical form so a mismatch diffs cleanly in pytest output.
    return json.dumps(payload, sort_keys=True, default=str)


def _direct_spec(transport):
    return NetworkSpec(transport=transport, topology="direct", num_hosts=2,
                       link_rate=100.0, host_link_delay_ns=500,
                       window_bytes=262_144)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_burst_pool_matrix_direct(monkeypatch, transport):
    """Every (burst, pool) combination yields the same payload on the
    clean direct point every figure sweep is built from."""
    spec = _direct_spec(transport)
    params = {"flows": [[0, 1, 1_000_000, 0]], "max_events": 50_000_000}
    payloads = {gates: _run(monkeypatch, *gates, spec, params)
                for gates in GATE_MATRIX}
    reference = payloads[GATE_MATRIX[0]]
    for gates, payload in payloads.items():
        assert payload == reference, f"payload diverged under gates {gates}"


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_burst_identity_lossy_clos(monkeypatch, transport):
    """Injected loss drives every truncation hook (NAK, RTO, fast
    retransmit, pacing-gap rollback); the payload must not move."""
    spec = NetworkSpec(transport=transport, topology="clos", num_hosts=4,
                       link_rate=100.0, host_link_delay_ns=500,
                       window_bytes=262_144, loss_rate=0.01)
    params = {"flows": [[0, 2, 300_000, 0], [1, 3, 300_000, 0]],
              "max_events": 50_000_000}
    off = _run(monkeypatch, "0", "1", "", spec, params)
    on = _run(monkeypatch, "1", "1", "", spec, params)
    assert on == off


def test_burst_identity_link_flap(monkeypatch):
    """Chaos runs force the serial slow path (the injector clears
    ``sim.burst_enabled``), so REPRO_BURST must be a strict no-op."""
    quick = get_preset("quick")
    spec = robustness._spec("dcp", quick)
    flow_bytes = robustness._flow_bytes(quick)
    params = {"flows": [[0, 2, flow_bytes, 0], [1, 3, flow_bytes, 10_000]],
              "max_events": 60_000_000,
              "chaos": get_scenario("link_flap")}
    off = _run(monkeypatch, "0", "1", "", spec, params)
    on = _run(monkeypatch, "1", "1", "", spec, params)
    assert on == off


# --------------------------------------------- kernel backend identity axis

@_needs_array
@pytest.mark.kernel_array
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_kernel_axis_direct_matrix(monkeypatch, transport):
    """REPRO_KERNEL=array matches ref bit for bit across the whole
    burst x pool gate matrix on the clean direct point."""
    spec = _direct_spec(transport)
    params = {"flows": [[0, 1, 1_000_000, 0]], "max_events": 50_000_000}
    for gates in GATE_MATRIX:
        ref = _run(monkeypatch, *gates, spec, params, kernel="ref")
        arr = _run(monkeypatch, *gates, spec, params, kernel="array")
        assert arr == ref, f"kernel divergence under gates {gates}"


@_needs_array
@pytest.mark.kernel_array
@pytest.mark.parametrize("transport", ("dcp", "gbn"))
def test_kernel_axis_lossy_clos(monkeypatch, transport):
    """Injected loss drives retransmission timers through the far store
    (heap / record array); the kernels must not diverge."""
    spec = NetworkSpec(transport=transport, topology="clos", num_hosts=4,
                       link_rate=100.0, host_link_delay_ns=500,
                       window_bytes=262_144, loss_rate=0.01)
    params = {"flows": [[0, 2, 300_000, 0], [1, 3, 300_000, 0]],
              "max_events": 50_000_000}
    for burst in ("0", "1"):
        ref = _run(monkeypatch, burst, "1", "", spec, params, kernel="ref")
        arr = _run(monkeypatch, burst, "1", "", spec, params, kernel="array")
        assert arr == ref, f"kernel divergence with REPRO_BURST={burst}"


@_needs_array
@pytest.mark.kernel_array
def test_kernel_axis_chaos_link_flap(monkeypatch):
    """Chaos forces the serial slow path; the kernel axis must still be
    payload-invisible there."""
    quick = get_preset("quick")
    spec = robustness._spec("dcp", quick)
    flow_bytes = robustness._flow_bytes(quick)
    params = {"flows": [[0, 2, flow_bytes, 0], [1, 3, flow_bytes, 10_000]],
              "max_events": 60_000_000,
              "chaos": get_scenario("link_flap")}
    ref = _run(monkeypatch, "1", "1", "", spec, params, kernel="ref")
    arr = _run(monkeypatch, "1", "1", "", spec, params, kernel="array")
    assert arr == ref


@pytest.mark.parametrize("kernel", KERNELS)
def test_fig8_quick_serial_jobs_replay_per_kernel(monkeypatch, tmp_path,
                                                  kernel):
    """serial == --jobs 2 == cache replay, bit for bit, on each backend;
    replay executes nothing."""
    if kernel == "array" and not _HAVE_NUMPY:
        pytest.skip("numpy not installed ([kernel] extra)")
    monkeypatch.setenv("REPRO_KERNEL", kernel)
    serial = ExperimentRunner(jobs=1, cache=ResultCache(enabled=False))
    r_serial = fig8.run("quick", runner=serial)

    cache_root = tmp_path / "cache"
    par = ExperimentRunner(jobs=2, cache=ResultCache(root=cache_root))
    r_par = fig8.run("quick", runner=par)

    replay = ExperimentRunner(jobs=2, cache=ResultCache(root=cache_root))
    r_replay = fig8.run("quick", runner=replay)
    assert replay.simulations_executed == 0

    assert r_serial.rows == r_par.rows == r_replay.rows


@_needs_array
@pytest.mark.kernel_array
def test_fig8_quick_cross_kernel_cache_replay(monkeypatch, tmp_path):
    """A cache warmed under ref replays under array with zero executions
    and identical rows: REPRO_KERNEL must not enter the cache key, and
    payloads must not move between backends."""
    cache_root = tmp_path / "cache"
    monkeypatch.setenv("REPRO_KERNEL", "ref")
    warm = ExperimentRunner(jobs=1, cache=ResultCache(root=cache_root))
    r_ref = fig8.run("quick", runner=warm)

    monkeypatch.setenv("REPRO_KERNEL", "array")
    replay = ExperimentRunner(jobs=2, cache=ResultCache(root=cache_root))
    r_arr = fig8.run("quick", runner=replay)
    assert replay.simulations_executed == 0
    assert r_arr.rows == r_ref.rows

    # And a cold array run reproduces the ref rows from scratch.
    fresh = ExperimentRunner(jobs=1, cache=ResultCache(enabled=False))
    r_cold = fig8.run("quick", runner=fresh)
    assert r_cold.rows == r_ref.rows
