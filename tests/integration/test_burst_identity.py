"""Bit-identity of the burst-mode dataplane (``REPRO_BURST``).

Burst mode only changes *how many Python calls* produce the event
stream — bulk slot scheduling, port burst drains, multi-packet
transport pulls — never the stream itself.  These tests pin that
contract across the gate matrix: burst on/off crossed with the packet
pool's on/off/debug modes, over a clean direct point, a lossy Clos
point (which exercises the NAK/RTO/fast-retransmit truncation paths),
and a chaos scenario (where the injector forces the serial slow path).

The one deliberately excluded observable is ``sim.packet_seq``: a
truncated train rolls back pre-pulled packets whose uids the serial
path never allocates, so the counter (payload-invisible by design —
uids appear in no payload, metric, or trace) may run ahead under loss.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos.scenarios import get_scenario
from repro.experiments import robustness
from repro.experiments.common import NetworkSpec
from repro.experiments.presets import get_preset
from repro.runner.points import simulate_flows

#: sdr and rifl declare ``supports_burst = False``: under REPRO_BURST=1
#: the engine's burst poll must detect that and take the serial
#: fallback, which these matrix cells prove is payload-invisible.
TRANSPORTS = ("gbn", "dcp", "tcp", "sdr", "rifl")

#: (REPRO_BURST, REPRO_PACKET_POOL, REPRO_PACKET_POOL_DEBUG)
GATE_MATRIX = (
    ("1", "1", ""),     # burst on,  pool on (the default stack)
    ("0", "1", ""),     # burst off: PR 4 serial behaviour
    ("1", "0", ""),     # burst on,  pool off
    ("0", "0", ""),     # both off
    ("1", "1", "1"),    # burst on,  pool poison/debug mode
)


def _run(monkeypatch, burst, pool, debug, spec, params):
    monkeypatch.setenv("REPRO_BURST", burst)
    monkeypatch.setenv("REPRO_PACKET_POOL", pool)
    monkeypatch.setenv("REPRO_PACKET_POOL_DEBUG", debug)
    payload = simulate_flows(spec, params)
    # Canonical form so a mismatch diffs cleanly in pytest output.
    return json.dumps(payload, sort_keys=True, default=str)


def _direct_spec(transport):
    return NetworkSpec(transport=transport, topology="direct", num_hosts=2,
                       link_rate=100.0, host_link_delay_ns=500,
                       window_bytes=262_144)


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_burst_pool_matrix_direct(monkeypatch, transport):
    """Every (burst, pool) combination yields the same payload on the
    clean direct point every figure sweep is built from."""
    spec = _direct_spec(transport)
    params = {"flows": [[0, 1, 1_000_000, 0]], "max_events": 50_000_000}
    payloads = {gates: _run(monkeypatch, *gates, spec, params)
                for gates in GATE_MATRIX}
    reference = payloads[GATE_MATRIX[0]]
    for gates, payload in payloads.items():
        assert payload == reference, f"payload diverged under gates {gates}"


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_burst_identity_lossy_clos(monkeypatch, transport):
    """Injected loss drives every truncation hook (NAK, RTO, fast
    retransmit, pacing-gap rollback); the payload must not move."""
    spec = NetworkSpec(transport=transport, topology="clos", num_hosts=4,
                       link_rate=100.0, host_link_delay_ns=500,
                       window_bytes=262_144, loss_rate=0.01)
    params = {"flows": [[0, 2, 300_000, 0], [1, 3, 300_000, 0]],
              "max_events": 50_000_000}
    off = _run(monkeypatch, "0", "1", "", spec, params)
    on = _run(monkeypatch, "1", "1", "", spec, params)
    assert on == off


def test_burst_identity_link_flap(monkeypatch):
    """Chaos runs force the serial slow path (the injector clears
    ``sim.burst_enabled``), so REPRO_BURST must be a strict no-op."""
    quick = get_preset("quick")
    spec = robustness._spec("dcp", quick)
    flow_bytes = robustness._flow_bytes(quick)
    params = {"flows": [[0, 2, flow_bytes, 0], [1, 3, flow_bytes, 10_000]],
              "max_events": 60_000_000,
              "chaos": get_scenario("link_flap")}
    off = _run(monkeypatch, "0", "1", "", spec, params)
    on = _run(monkeypatch, "1", "1", "", spec, params)
    assert on == off
