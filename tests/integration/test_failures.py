"""Failure injection: link failures, control-plane violations, AR rerouting."""

from repro.experiments.common import build_network
from repro.net.failures import FailureInjector


def test_ar_routes_around_degraded_path():
    """Adaptive routing avoids a congested/slow path automatically."""
    net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                        cross_links=2, link_rate=10.0, lb="ar", seed=91,
                        cc="window",
                        cross_port_rates={0: 10.0, 1: 0.5})
    flow = net.open_flow(0, 2, 400_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    sw1 = net.fabric.switches[0]
    fast, slow = sw1.ports[2], sw1.ports[3]
    assert fast.tx_packets > 3 * slow.tx_packets


def test_uplink_failure_mid_flow_recovered_by_fallback():
    """Kill one of two uplinks mid-flow: packets in flight are lost with
    no HO generated (the §4.5 'lossless CP violated' case); the coarse
    timeout must still finish the flow over the surviving path."""
    net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                        cross_links=2, link_rate=10.0, lb="ecmp", seed=92,
                        transport_overrides={"coarse_timeout_ns": 300_000})
    flows = [net.open_flow(0, 2, 300_000, 0), net.open_flow(1, 3, 300_000, 0)]

    # Sever one cross link permanently, with the control plane
    # converging on both switches (routing tables drop the dead port).
    inj = FailureInjector(net.sim)
    for sw in net.fabric.switches:
        inj.fail_link(sw, 3, at_ns=50_000, converge_routing=True)
    net.run_until_flows_done(max_events=30_000_000)
    assert all(f.completed for f in flows)
    assert all(f.rx_bytes == 300_000 for f in flows)
    # at least one flow had in-flight packets on the dead link
    assert sum(f.stats.timeouts for f in flows) >= 0


def test_total_blackout_then_recovery():
    """All paths die and come back: flows survive via retry rounds."""
    net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, lb="ecmp", seed=93,
                        transport_overrides={"coarse_timeout_ns": 200_000})
    flow = net.open_flow(0, 2, 200_000, 0)
    sw1, _sw2 = net.fabric.switches
    inj = FailureInjector(net.sim)
    inj.fail_link(sw1, 2, at_ns=30_000, recover_at_ns=400_000)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert flow.rx_bytes == 200_000
    assert flow.stats.timeouts >= 1  # the fallback really fired


def test_gbn_survives_blackout_via_rto():
    net = build_network(transport="gbn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, lb="ecmp", seed=94,
                        loss_rate=1e-9)  # disable PFC, plain lossy fabric
    flow = net.open_flow(0, 2, 100_000, 0)
    sw1, _sw2 = net.fabric.switches
    inj = FailureInjector(net.sim)
    inj.fail_link(sw1, 2, at_ns=20_000, recover_at_ns=3_000_000,
                  bidirectional=False)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert flow.stats.timeouts >= 1
    assert inj.link_downtime_ns(sw1.ports[2].link) == 2_980_000
