"""End-to-end campaign runs: bit-identity and CLI integration."""

import json

import pytest

import repro.experiments.cli as cli
from repro.campaigns import compile_campaign, run_campaign, run_compiled
from repro.obs.schema import validate_file
from repro.runner import ExperimentRunner, ResultCache

TINY = {
    "name": "tiny-int",
    "title": "integration tiny",
    "topology": {"topology": "direct", "num_hosts": 2},
    "workload": [
        {"kind": "flows", "name": "pair",
         "flows": [[0, 1, 40_000, 0], [1, 0, 20_000, 5_000]]},
    ],
    "groups": [
        {"name": "transport", "axis": "spec.transport",
         "values": ["gbn", "irn", "dcp"]},
    ],
    "sim": {"max_events": 2_000_000},
}


class TestBitIdentity:
    def test_serial_parallel_replay_identical(self, tmp_path):
        compiled = compile_campaign(TINY, "quick")
        serial_cache = tmp_path / "serial"
        serial = run_compiled(compiled, ExperimentRunner(
            jobs=1, cache=ResultCache(root=serial_cache)))
        parallel = run_compiled(compiled, ExperimentRunner(
            jobs=2, cache=ResultCache(root=tmp_path / "par")))
        replayer = ExperimentRunner(jobs=1,
                                    cache=ResultCache(root=serial_cache))
        replay = run_compiled(compiled, replayer)
        assert replayer.simulations_executed == 0   # pure cache replay
        s = json.dumps(serial.to_payload(), sort_keys=True)
        p = json.dumps(parallel.to_payload(), sort_keys=True)
        r = json.dumps(replay.to_payload(), sort_keys=True)
        assert s == p == r
        assert serial.format_table() == parallel.format_table() \
            == replay.format_table()

    def test_metrics_attached_without_any_export_flag(self):
        result = run_campaign(TINY, "quick")
        assert result.metrics
        assert set(result.metrics) == {p.point_id for p in
                                       compile_campaign(TINY, "quick").points}


class TestCli:
    def write_spec(self, tmp_path, spec=TINY):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(spec))
        return path

    def test_campaign_from_spec_file(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        metrics_path = tmp_path / "m.jsonl"
        rc = cli.main(["campaign", str(spec_path), "--preset", "quick",
                       "--no-cache", "--metrics-out", str(metrics_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign-tiny-int" in out
        assert "transport" in out
        assert validate_file(str(metrics_path)) == []
        records = [json.loads(line)
                   for line in metrics_path.read_text().splitlines()]
        headers = [r for r in records if r["type"] == "campaign"]
        assert len(headers) == 1
        assert headers[0]["name"] == "tiny-int"
        assert headers[0]["groups"] == [
            {"name": "transport", "axis": "spec.transport"}]
        assert len(headers[0]["points"]) == 3

    def test_campaign_list_subcommand(self, capsys):
        assert cli.main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "incast_backpressure" in out
        assert "link_integrity_soak" in out

    def test_bad_campaign_is_a_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({**TINY, "groups": []}))
        with pytest.raises(SystemExit):
            cli.main(["campaign", str(bad)])
        assert "groups" in capsys.readouterr().err

    def test_unknown_campaign_name(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["campaign", "no_such_campaign"])
        assert "no_such_campaign" in capsys.readouterr().err

    def test_stray_target_on_non_campaign(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig13", "extra"])


class TestLibraryEndToEnd:
    def test_multi_tenant_mix_single_point_runs(self):
        # One point of a library campaign with a stochastic layer mix:
        # compile, shrink to the first point, run, and check both layers
        # contributed flows.
        from repro.campaigns import get_campaign
        spec = get_campaign("multi_tenant_mix")
        spec["groups"] = [{"name": "transport", "axis": "spec.transport",
                           "values": ["dcp"]}]
        spec["workload"][0]["max_flows"] = 10
        spec["sim"] = {"max_events": 4_000_000}
        result = run_campaign(spec, "quick")
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["flows"] == 10 + 8 * 7   # poisson cap + 8-host mesh
