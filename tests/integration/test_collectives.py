"""Integration: collective workloads (Ring-AllReduce, AllToAll)."""

import pytest

from repro.experiments.common import build_network
from repro.workload.collective import (AllToAll, RingAllReduce,
                                       run_grouped_collectives)


def _net(**over):
    defaults = dict(transport="dcp", lb="ar", topology="clos", num_hosts=8,
                    num_leaves=2, num_spines=2, link_rate=10.0, seed=81,
                    buffer_bytes=2_000_000)
    defaults.update(over)
    return build_network(**defaults)


def test_ring_allreduce_step_count():
    net = _net()
    coll = RingAllReduce(net, [0, 1, 2, 3], total_bytes=40_000)
    result = coll.start()
    net.run_until_flows_done(max_events=30_000_000)
    # 2(k-1) steps, one flow per member per step
    assert len(result.flows) == 4 * 2 * (4 - 1)
    assert all(f.completed for f in result.flows)
    assert result.jct_ns() > 0


def test_ring_dependency_ordering():
    """A host's step-s+1 flow starts only after its step-s receive."""
    net = _net()
    coll = RingAllReduce(net, [0, 1, 2, 3], total_bytes=40_000)
    result = coll.start()
    net.run_until_flows_done(max_events=30_000_000)
    by_step = {}
    for f in result.flows:
        step = int(f.tag.rsplit(".s", 1)[1])
        by_step.setdefault(step, []).append(f)
    for step in range(1, 6):
        earliest_next = min(f.start_ns for f in by_step[step])
        earliest_prev_done = min(f.rx_complete_ns for f in by_step[step - 1])
        assert earliest_next >= earliest_prev_done


def test_ring_slice_sizes():
    net = _net()
    coll = RingAllReduce(net, [0, 1, 2, 3], total_bytes=41_000)
    result = coll.start()
    assert all(f.size_bytes == 41_000 // 4 for f in result.flows)


def test_alltoall_full_mesh():
    net = _net()
    coll = AllToAll(net, [0, 1, 2, 3], total_bytes=40_000)
    result = coll.start()
    net.run_until_flows_done(max_events=30_000_000)
    assert len(result.flows) == 4 * 3
    pairs = {(f.src, f.dst) for f in result.flows}
    assert len(pairs) == 12
    assert all(f.completed for f in result.flows)


def test_grouped_collectives_share_fabric():
    net = _net(num_hosts=16)
    results = run_grouped_collectives(net, "alltoall", num_groups=4,
                                      group_size=4, total_bytes=40_000)
    net.run_until_flows_done(max_events=60_000_000)
    assert len(results) == 4
    jcts = [r.jct_ns() for r in results]
    assert all(j > 0 for j in jcts)
    members = [set(r.group) for r in results]
    for i in range(4):
        for j in range(i + 1, 4):
            assert not members[i] & members[j]


def test_jct_requires_completion():
    net = _net()
    coll = AllToAll(net, [0, 1], total_bytes=10_000)
    result = coll.start()
    with pytest.raises(ValueError):
        result.jct_ns()


def test_collective_validation():
    net = _net()
    with pytest.raises(ValueError):
        RingAllReduce(net, [0], 1000)
    with pytest.raises(ValueError):
        run_grouped_collectives(net, "alltoall", num_groups=5, group_size=4,
                                total_bytes=1000)
    with pytest.raises(ValueError):
        run_grouped_collectives(net, "scatter", num_groups=1, group_size=4,
                                total_bytes=1000)


def test_dcp_beats_gbn_on_congested_alltoall():
    """The Fig 12/14 shape at miniature scale."""
    jcts = {}
    for scheme, lb in (("dcp", "ar"), ("gbn", "ecmp")):
        net = _net(transport=scheme, lb=lb, buffer_bytes=500_000)
        results = run_grouped_collectives(net, "alltoall", num_groups=2,
                                          group_size=4, total_bytes=200_000)
        net.run_until_flows_done(max_events=60_000_000)
        jcts[scheme] = max(r.jct_ns() for r in results)
    assert jcts["dcp"] <= jcts["gbn"] * 1.1
