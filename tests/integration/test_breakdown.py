"""Integration tests for the span flight recorder across all transports.

Three contracts from the flight-recorder issue:

* **attribution** — for every registered transport at 0/1/5% forced
  loss, the per-flow FCT breakdown partitions the completion time:
  components non-negative, summing exactly to the FCT (residual 0,
  trivially inside the stated 1% bound), with every flow-attributed
  span nested inside the run;
* **non-interference** — recording spans changes nothing about the
  simulation itself: flow records and the event count are bit-identical
  with spans on or off;
* **determinism** — the breakdown block (and its formatted table) is
  bit-identical across serial, ``--jobs 2`` and cache-replay runs.
"""

from __future__ import annotations

import pytest

from repro.analysis.latency import COMPONENTS
from repro.experiments.common import NetworkSpec, _transport_registry
from repro.experiments.registry import run_experiment
from repro.obs import spans as spans_mod
from repro.runner import (ExperimentRunner, ResultCache, SweepPoint,
                          canonical_json)
from repro.runner.points import simulate_flows

LOSS_RATES = (0.0, 0.01, 0.05)
TRANSPORTS = sorted(_transport_registry())
SPAN_TELEMETRY = {"spans": {"max_spans": 1_000_000}}

_FLOWS = [[0, 1, 40_000, 0], [1, 0, 20_000, 5_000]]


def _spec(transport: str, loss_rate: float) -> NetworkSpec:
    return NetworkSpec(transport=transport, topology="direct", num_hosts=2,
                       link_rate=10.0, loss_rate=loss_rate, seed=7)


def _run(transport: str, loss_rate: float, telemetry=None) -> dict:
    return simulate_flows(_spec(transport, loss_rate),
                          {"flows": _FLOWS, "telemetry": telemetry})


@pytest.mark.parametrize("loss_rate", LOSS_RATES)
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_breakdown_partitions_fct(transport: str, loss_rate: float) -> None:
    payload = _run(transport, loss_rate, telemetry=SPAN_TELEMETRY)
    assert all(rec["completed"] for rec in payload["flows"])
    assert payload["spans"]["dropped_spans"] == 0, (
        f"{transport}/loss={loss_rate}: span budget too small for "
        "the acceptance matrix")
    breakdown = payload["breakdown"]
    assert len(breakdown) == len(_FLOWS)
    for entry, rec in zip(breakdown, payload["flows"]):
        label = (f"{transport}/loss={loss_rate}: flow "
                 f"{entry['src']}->{entry['dst']}")
        assert entry["completed"], label
        assert entry["fct_ns"] == rec["fct_ns"], label
        for comp in COMPONENTS:
            assert entry[comp] >= 0, f"{label}: {comp} negative"
        total = sum(entry[comp] for comp in COMPONENTS)
        assert total == entry["fct_ns"], (
            f"{label}: components sum to {total}, FCT {entry['fct_ns']}")
        assert entry["residual_ns"] == 0, label
        # well inside the acceptance bound ("within 1% of FCT")
        assert abs(entry["fct_ns"] - total) <= 0.01 * entry["fct_ns"]


@pytest.mark.parametrize("loss_rate", LOSS_RATES)
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_spans_nest_inside_run(transport: str, loss_rate: float) -> None:
    payload = _run(transport, loss_rate, telemetry=SPAN_TELEMETRY)
    end_ns = payload["end_ns"]
    flow_starts = {rec["start_ns"] for rec in payload["flows"]}
    earliest = min(flow_starts)
    for start, end, kind, fid, _uid, _actor in payload["spans"]["spans"]:
        assert start <= end, f"{transport}: inverted {kind} span"
        assert end <= end_ns, f"{transport}: {kind} span outlives the run"
        if fid >= 0:
            assert start >= earliest, (
                f"{transport}: {kind} span predates every flow")


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_loss_shows_up_as_stall_or_reorder_time(transport: str) -> None:
    """At 5% loss, recovery must leave a visible footprint: some flow
    attributes time to retx stalls, reorder holds, or at minimum the
    tracker saw retransmission markers (hop-level repair for RIFL)."""
    payload = _run(transport, 0.05, telemetry=SPAN_TELEMETRY)
    stall = sum(e["retx_stall_ns"] + e["reorder_ns"]
                for e in payload["breakdown"])
    marks = payload["spans"]["marks"]
    if transport == "rifl":
        # Link-layer repair: no transport-visible stalls required.
        return
    assert stall > 0 or marks, (
        f"{transport}: 5% loss left no stall time and no retx/timeout "
        "markers")


@pytest.mark.parametrize("transport", TRANSPORTS)
def test_span_recording_does_not_perturb_simulation(transport: str) -> None:
    plain = _run(transport, 0.01)
    spanned = _run(transport, 0.01, telemetry=SPAN_TELEMETRY)
    assert plain["events"] == spanned["events"]
    assert plain["end_ns"] == spanned["end_ns"]
    assert canonical_json(plain["flows"]) == canonical_json(spanned["flows"])
    assert spans_mod.active() is None     # global restored


class TestBreakdownDeterminism:
    POINT_RUNNER = "repro.runner.points.simulate_flows"

    def _points(self) -> list[SweepPoint]:
        return [SweepPoint(f"{t}-1pct", _spec(t, 0.01), {"flows": _FLOWS})
                for t in ("gbn", "dcp", "sdr", "rifl")]

    def test_breakdown_identical_serial_jobs2_and_cache(self, tmp_path):
        points = self._points()
        serial = ExperimentRunner(jobs=1, telemetry=SPAN_TELEMETRY,
                                  cache=ResultCache(root=tmp_path / "s"))
        parallel = ExperimentRunner(jobs=2, telemetry=SPAN_TELEMETRY,
                                    cache=ResultCache(root=tmp_path / "p"))
        pay_s = serial.run_points("bd", points, self.POINT_RUNNER)
        pay_p = parallel.run_points("bd", points, self.POINT_RUNNER)
        assert canonical_json(pay_s) == canonical_json(pay_p)
        assert canonical_json(serial.last_breakdowns) == canonical_json(
            parallel.last_breakdowns)
        assert canonical_json(serial.last_spans) == canonical_json(
            parallel.last_spans)

        replay = ExperimentRunner(jobs=2, telemetry=SPAN_TELEMETRY,
                                  cache=ResultCache(root=tmp_path / "p"))
        pay_c = replay.run_points("bd", points, self.POINT_RUNNER)
        assert replay.simulations_executed == 0
        assert canonical_json(pay_c) == canonical_json(pay_s)
        assert canonical_json(replay.last_breakdowns) == canonical_json(
            serial.last_breakdowns)

    def test_fig8_breakdown_table_identical_across_modes(self, tmp_path):
        serial = ExperimentRunner(jobs=1, telemetry=SPAN_TELEMETRY,
                                  cache=ResultCache(root=tmp_path))
        res_s = run_experiment("fig8", preset="quick", runner=serial)
        assert res_s.breakdown, "sweep run must attach breakdown data"
        table_s = res_s.format_breakdown()
        assert "FCT breakdown" in table_s

        parallel = ExperimentRunner(jobs=2, telemetry=SPAN_TELEMETRY,
                                    cache=ResultCache(root=tmp_path))
        res_p = run_experiment("fig8", preset="quick", runner=parallel)
        assert parallel.simulations_executed == 0      # replayed from cache
        assert res_p.format_breakdown() == table_s
        assert canonical_json(res_p.breakdown) == canonical_json(
            res_s.breakdown)
        # the breakdown block survives the result payload round trip
        from repro.experiments.result import ExperimentResult
        clone = ExperimentResult.from_payload(res_s.to_payload())
        assert clone.format_breakdown() == table_s

    def test_span_telemetry_changes_cache_key(self, tmp_path):
        points = self._points()[:1]
        plain = ExperimentRunner(jobs=1, cache=ResultCache(root=tmp_path))
        plain.run_points("bd", points, self.POINT_RUNNER)
        assert plain.simulations_executed == 1
        spanned = ExperimentRunner(jobs=1, telemetry=SPAN_TELEMETRY,
                                   cache=ResultCache(root=tmp_path))
        spanned.run_points("bd", points, self.POINT_RUNNER)
        assert spanned.simulations_executed == 1       # miss by design
        assert spanned.last_breakdowns
