"""Chaos campaign: scenario wiring, exactly-once delivery, determinism.

Every transport must complete its flows *exactly once* across a
mid-flow link flap and a switch blackout (the §4.5 failure classes),
DCP's coarse-grained fallback timer must actually fire and be counted,
and the robustness sweep must be bit-identical across serial, parallel
and cache-replayed execution (scenarios ride the spec-hash cache key).
"""

from __future__ import annotations

import pytest

from repro.chaos.scenarios import SCENARIOS, apply_scenario, get_scenario
from repro.experiments import robustness
from repro.experiments.presets import get_preset
from repro.runner import ExperimentRunner, ResultCache
from repro.runner.points import simulate_flows

QUICK = get_preset("quick")
FLOW_BYTES = robustness._flow_bytes(QUICK)


def _run_point(transport: str, scenario_key: str) -> dict:
    spec = robustness._spec(transport, QUICK)
    params = {
        "flows": [[0, 2, FLOW_BYTES, 0], [1, 3, FLOW_BYTES, 10_000]],
        "max_events": 60_000_000,
        "chaos": get_scenario(scenario_key),
    }
    return simulate_flows(spec, params)


@pytest.mark.parametrize("transport", robustness.TRANSPORTS)
@pytest.mark.parametrize("scenario", ["link_flap", "switch_blackout"])
def test_exactly_once_delivery_across_failure(transport, scenario):
    """Flows complete and the app sees every byte exactly once."""
    payload = _run_point(transport, scenario)
    for rec in payload["flows"]:
        assert rec["completed"], (transport, scenario, rec)
        # rx_bytes counts bytes *delivered to the application*:
        # == size means no byte was lost and no duplicate slipped
        # through (duplicates are discarded and counted separately).
        assert rec["rx_bytes"] == rec["size_bytes"]
    chaos = payload["chaos"]
    assert chaos["scenario"] == scenario
    assert chaos["events"], "scenario should have injected something"
    assert chaos["recovered"], (transport, scenario, chaos["recovery"])
    assert chaos["recovery_ns"] > 0
    assert all(v >= 0 for v in chaos["downtime_ns"].values())


@pytest.mark.parametrize("scenario", ["link_flap", "switch_blackout"])
def test_dcp_coarse_timeout_fires_and_is_counted(scenario):
    """The §4.5 fallback timer is DCP's only way past a dead path; it
    must fire under both failure classes and be counted separately from
    regular RTOs."""
    payload = _run_point("dcp", scenario)
    chaos = payload["chaos"]
    assert chaos["coarse_timeouts"] >= 1
    counters = payload["metrics"]["counters"]
    coarse = sum(v for n, v in counters.items()
                 if n.startswith("rnic.") and n.endswith(".coarse_timeouts"))
    assert coarse == chaos["coarse_timeouts"]
    assert chaos["timeouts"] >= chaos["coarse_timeouts"]


def test_chaos_injection_counters_match_events():
    payload = _run_point("dcp", "link_flap")
    counters = payload["metrics"]["counters"]
    events = payload["chaos"]["events"]
    assert counters["chaos.injected"] == len(events)
    recovering = [e for e in events if e["recover_at_ns"] is not None]
    assert counters["chaos.recovered"] == len(recovering)


def test_baseline_scenario_reports_zero_recovery():
    payload = _run_point("dcp", "none")
    chaos = payload["chaos"]
    assert chaos["events"] == []
    assert chaos["recovery_ns"] == 0
    assert chaos["recovered"]
    assert chaos["retx_storm_pkts"] == 0


def test_scenario_library_applies_on_the_testbed():
    """Every library scenario resolves its targets on the robustness
    fabric (catches target-schema drift before a sweep does)."""
    from repro.experiments.common import Network

    for key in SCENARIOS:
        net = Network(robustness._spec("dcp", QUICK))
        injector = apply_scenario(net, get_scenario(key))
        expected = len(get_scenario(key)["events"])
        if key in ("link_flap", "link_flap_converge", "double_flap"):
            # flap events expand to one FailureEvent per flap
            assert len(injector.events) >= expected
        else:
            assert len(injector.events) == expected


def test_robustness_serial_parallel_replay_identical(tmp_path):
    """serial == --jobs 2 == cache replay, bit for bit; replay executes
    nothing."""
    serial = ExperimentRunner(jobs=1, cache=ResultCache(enabled=False))
    r_serial = robustness.run("quick", runner=serial, chaos="link_flap")

    cache = ResultCache(root=tmp_path / "cache")
    par = ExperimentRunner(jobs=2, cache=cache)
    r_par = robustness.run("quick", runner=par, chaos="link_flap")
    assert par.simulations_executed == len(robustness.TRANSPORTS)

    replay = ExperimentRunner(jobs=2, cache=ResultCache(root=tmp_path / "cache"))
    r_replay = robustness.run("quick", runner=replay, chaos="link_flap")
    assert replay.simulations_executed == 0

    assert r_serial.rows == r_par.rows == r_replay.rows


def test_chaos_params_change_the_cache_key(tmp_path):
    """Two runs differing only in scenario must not share cache
    entries."""
    cache = ResultCache(root=tmp_path / "cache")
    runner = ExperimentRunner(jobs=1, cache=cache)
    r_flap = robustness.run("quick", runner=runner, chaos="link_flap")
    executed = runner.simulations_executed
    r_none = robustness.run("quick", runner=runner, chaos="none")
    assert runner.simulations_executed == 2 * executed  # all misses
    assert r_flap.rows != r_none.rows
