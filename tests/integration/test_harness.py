"""Integration tests for the experiment harness itself."""

import pytest

from repro.experiments.common import Network, NetworkSpec, build_network
from repro.experiments.presets import PRESETS, custom_preset, get_preset


class TestNetworkSpec:
    def test_pfc_only_for_lossless_schemes(self):
        assert NetworkSpec(transport="gbn").needs_pfc()
        assert NetworkSpec(transport="mp_rdma").needs_pfc()
        assert not NetworkSpec(transport="irn").needs_pfc()
        assert not NetworkSpec(transport="dcp").needs_pfc()
        # forced-loss runs disable PFC even for GBN (the CX5 testbed mode)
        assert not NetworkSpec(transport="gbn", loss_rate=0.01).needs_pfc()

    def test_dcp_gets_trimming_switches(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2)
        assert all(sw.config.enable_trimming for sw in net.fabric.switches)
        assert all(sw.config.wrr_weight > 0 for sw in net.fabric.switches)

    def test_baselines_get_plain_switches(self):
        net = build_network(transport="irn", num_hosts=8, num_leaves=2,
                            num_spines=2)
        assert not any(sw.config.enable_trimming
                       for sw in net.fabric.switches)

    def test_unknown_transport_rejected(self):
        with pytest.raises(KeyError):
            build_network(transport="quic")

    def test_unknown_cc_rejected(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2, cc="vegas")
        with pytest.raises(ValueError):
            net.open_flow(0, 1, 100, 0)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_network(transport="dcp", topology="torus")

    def test_transport_override_validation(self):
        with pytest.raises(AttributeError):
            build_network(transport="dcp", num_hosts=8, num_leaves=2,
                          num_spines=2,
                          transport_overrides={"not_a_field": 1})

    def test_transport_override_applies(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2,
                            transport_overrides={"pcie_rtt_ns": 777})
        assert net.tconfig.pcie_rtt_ns == 777

    def test_rto_scales_with_fabric_rtt(self):
        near = build_network(transport="irn", num_hosts=8, num_leaves=2,
                             num_spines=2, spine_link_delay_ns=1_000)
        far = build_network(transport="irn", num_hosts=8, num_leaves=2,
                            num_spines=2, spine_link_delay_ns=5_000_000)
        assert far.tconfig.rto_ns > near.tconfig.rto_ns


class TestNetworkFlows:
    def test_self_flow_rejected(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2)
        with pytest.raises(ValueError):
            net.open_flow(3, 3, 100, 0)

    def test_reuse_qp_shares_connection(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2)
        net.open_flow(0, 1, 100, 0, reuse_qp=True)
        net.open_flow(0, 1, 100, 1000, reuse_qp=True)
        assert len(net._pair_qps) == 1
        assert len(net.transports[0].qps) == 1

    def test_fresh_qp_per_flow_by_default(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2)
        net.open_flow(0, 1, 100, 0)
        net.open_flow(0, 1, 100, 1000)
        assert len(net.transports[0].qps) == 2

    def test_slowdowns_at_least_one(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2, link_rate=10.0)
        net.open_flow(0, 7, 50_000, 0)
        net.run_until_flows_done(max_events=5_000_000)
        for _flow, sd in net.slowdowns():
            assert sd >= 1.0

    def test_on_complete_callback(self):
        net = build_network(transport="dcp", num_hosts=8, num_leaves=2,
                            num_spines=2)
        fired = []
        net.open_flow(0, 1, 10_000, 0, on_complete=lambda f: fired.append(f))
        net.run_until_flows_done(max_events=5_000_000)
        assert len(fired) == 1


class TestPresets:
    def test_all_presets_exist(self):
        assert set(PRESETS) == {"quick", "default", "full"}

    def test_presets_are_consistent(self):
        for preset in PRESETS.values():
            assert preset.num_hosts == (preset.num_hosts
                                        // preset.num_leaves) * preset.num_leaves
            assert preset.incast_fan_in < preset.num_hosts
            assert (preset.collective_groups * preset.collective_group_size
                    <= preset.num_hosts)

    def test_get_preset_by_name_or_object(self):
        p = get_preset("quick")
        assert get_preset(p) is p
        with pytest.raises(ValueError):
            get_preset("huge")

    def test_custom_preset_overrides(self):
        p = custom_preset("quick", num_hosts=8, num_leaves=2, num_spines=2)
        assert p.num_hosts == 8
        assert p.link_rate == get_preset("quick").link_rate
