"""Smoke tests: every shipped example must run to completion."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys) -> str:
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "switch summary" in out
    assert "slowdown" in out


def test_lossy_fabric_comparison(capsys):
    out = _run_example("lossy_fabric_comparison", capsys)
    assert "dcp" in out and "timeout" in out
    assert "stuck" not in out  # every scheme must finish its transfer


def test_ai_collectives(capsys):
    out = _run_example("ai_collectives", capsys)
    assert "DCP + adaptive routing" in out
    assert "ms" in out


def test_incast_control_plane(capsys):
    out = _run_example("incast_control_plane", capsys)
    assert "WRR weight" in out
    assert "True" in out  # all flows completed at every incast degree


def test_failure_timeline(capsys):
    out = _run_example("failure_timeline", capsys)
    assert "fail injected" in out
    assert "exactly-once delivery held: True" in out
    assert "coarse" in out


def test_scale_demo(capsys):
    out = _run_example("scale_demo", capsys)
    assert "256 hosts" in out
    assert "flows ran fluid" in out
    assert "no escalations" in out


def test_trace_demo(capsys, tmp_path):
    path = EXAMPLES / "trace_demo.py"
    spec = importlib.util.spec_from_file_location("example_trace_demo", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main(str(tmp_path / "demo.json"))
    finally:
        sys.modules.pop(spec.name, None)
    out = capsys.readouterr().out
    assert "where the time went" in out
    assert "validated: OK" in out
    assert (tmp_path / "demo.json").exists()


def test_cross_datacenter(capsys):
    out = _run_example("cross_datacenter", capsys)
    assert "inter-DC transfer" in out
    assert "100" in out
