"""Coverage for the per-bin curves and CDF outputs of Figs 13/14."""

from repro.experiments.fig13_websearch import per_bin_table
from repro.experiments.fig14_ai_sim import fct_cdf, ideal_jct_ns
from repro.experiments.presets import get_preset


def test_fig13_per_bin_table():
    result = per_bin_table(preset="quick", load=0.3, percentile_key="p95")
    assert result.rows, "no bins produced"
    bins = result.column("bin_kb")
    assert bins == sorted(bins)
    # every scheme contributed a curve
    for label in ("pfc-ecmp", "irn-ar", "mp-rdma", "dcp-ar"):
        assert any(label in row for row in result.rows)
    # slowdowns are >= 1 wherever defined
    for row in result.rows:
        for key, val in row.items():
            if key != "bin_kb" and val == val:  # skip NaN
                assert val >= 1.0


def test_fig14_cdf_output():
    curves = fct_cdf("alltoall", preset="quick")
    assert set(curves) == {"pfc-ecmp", "irn-ar", "mp-rdma", "dcp-ar"}
    for label, points in curves.items():
        assert points, label
        probs = [p for _v, p in points]
        assert probs == sorted(probs)
        assert probs[-1] == 1.0


def test_fig14_ideal_bounds():
    p = get_preset("quick")
    ar = ideal_jct_ns("allreduce", p)
    a2a = ideal_jct_ns("alltoall", p)
    assert ar > a2a > 0  # the ring makes 2(k-1) serial steps
