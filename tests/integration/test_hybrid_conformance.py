"""Conformance harness: the hybrid fidelity tier vs ground truth.

Two families of guarantees (DESIGN.md "Fidelity tiers"):

* **Exactness** where the fluid model claims it: fig8's uncontended
  direct-connect points match the packet simulation bit-for-bit, and a
  transport outside the fluid whitelist (tcp) or a falsifying spec
  (injected loss) routes through the packet path unchanged.
* **Tolerance** where contention forces escalation: the fig13 WebSearch
  workload and fig14-style collectives must track the packet-level
  percentiles within the stated bounds.  The bounds are ~2x the
  divergence measured when the tier was built (see test bodies) — they
  catch model regressions, not noise.

Everything runs at the quick preset so the whole module stays inside
the CI smoke budget.
"""

from dataclasses import replace

import pytest

from repro.analysis.fct import overall_percentiles
from repro.experiments import fig8_basic_perf as fig8
from repro.experiments.common import build_network
from repro.experiments.fig13_websearch import run_scheme
from repro.experiments.presets import get_preset
from repro.runner.points import simulate_flows
from repro.sim.fidelity import FLUID_TRANSPORTS
from repro.workload.collective import run_grouped_collectives


def _rel_diff(hybrid: float, packet: float) -> float:
    return abs(hybrid - packet) / packet


# --------------------------------------------------------------- fig8
@pytest.mark.parametrize("point", fig8.sweep(get_preset("quick")),
                         ids=lambda pt: pt.point_id)
def test_fig8_point_exact(point):
    """Every fig8 point is one uncontended flow: hybrid must be exact.

    For whitelisted transports (gbn, dcp) that is the fluid model's
    closed-form schedule; tcp falls outside the whitelist and must
    reproduce the packet path bit-for-bit instead.
    """
    packet = simulate_flows(replace(point.spec, fidelity="packet"),
                            point.params)
    hybrid = simulate_flows(replace(point.spec, fidelity="hybrid"),
                            point.params)
    assert hybrid["flows"][0]["completed"]
    assert hybrid["flows"][0]["fct_ns"] == packet["flows"][0]["fct_ns"]
    assert (hybrid["flows"][0]["rx_bytes"]
            == packet["flows"][0]["rx_bytes"])
    if point.spec.transport not in FLUID_TRANSPORTS:
        # Whole-run identity, not just the FCT.
        assert hybrid["flows"] == packet["flows"]
        assert hybrid["events"] == packet["events"]


# -------------------------------------------------------------- fig13
def test_fig13_websearch_within_tolerance():
    """Contended WebSearch: hybrid tracks packet-level percentiles.

    Measured divergence at build time (quick preset, dcp-ar, load 0.3):
    p50 +1.2%, p95 -2.0%, p99 +3.6%.  Bounds are ~2x that.
    """
    p = get_preset("quick")
    stats = {}
    for fidelity in ("packet", "hybrid"):
        net = run_scheme("dcp-ar", "dcp", "ar", 0.3, p, fidelity=fidelity)
        assert all(f.completed for f in net.flows)
        stats[fidelity] = overall_percentiles(net.slowdowns())
    assert _rel_diff(stats["hybrid"]["p50"], stats["packet"]["p50"]) < 0.08
    assert _rel_diff(stats["hybrid"]["p95"], stats["packet"]["p95"]) < 0.08
    assert _rel_diff(stats["hybrid"]["p99"], stats["packet"]["p99"]) < 0.15


def test_fig13_hybrid_escalates_under_load():
    """The controller must actually *use* the packet tier here — a
    WebSearch mix saturating a 2-leaf CLOS is not fluid territory."""
    p = get_preset("quick")
    net = run_scheme("dcp-ar", "dcp", "ar", 0.5, p, fidelity="hybrid")
    summary = net.fidelity.summary()
    assert summary["packet_flows"] + summary["escalations"] > 0
    assert summary["packet_flows"] + summary["fluid_flows"] == len(net.flows)


# ---------------------------------------------- fig14-style collective
def test_collective_jct_within_tolerance():
    """Ring-AllReduce (fig14 shape): hybrid JCT within 3% of packet.

    Measured divergence at build time: -1.05% (the packet sim carries
    residual window occupancy across steps on reused QPs; the fluid
    model does not — DESIGN.md records this as accepted divergence).
    """
    jcts = {}
    for fidelity in ("packet", "hybrid"):
        net = build_network(
            transport="dcp", lb="ar", topology="clos", num_hosts=16,
            num_leaves=2, num_spines=2, link_rate=10.0, seed=73,
            fidelity=fidelity)
        groups = run_grouped_collectives(net, "allreduce", 2, 8, 400_000)
        net.run_until_flows_done(max_events=100_000_000)
        jcts[fidelity] = max(g.jct_ns() for g in groups)
    assert _rel_diff(jcts["hybrid"], jcts["packet"]) < 0.03


# ------------------------------------------------- falsifying specs
def test_injected_loss_spec_is_packet_identical():
    """loss_rate > 0 falsifies the fluid model a priori: the hybrid
    network must behave exactly like the packet one."""
    runs = {}
    for fidelity in ("packet", "hybrid"):
        net = build_network(transport="dcp", topology="direct", num_hosts=2,
                            link_rate=25.0, loss_rate=0.02, lb="ar",
                            seed=7, fidelity=fidelity)
        flow = net.open_flow(0, 1, 200_000, 0)
        net.run_until_flows_done(max_events=50_000_000)
        assert flow.completed
        runs[fidelity] = (flow.fct_ns(), flow.stats.data_pkts_sent,
                          flow.stats.retx_pkts_sent,
                          net.sim.events_processed)
    assert runs["hybrid"] == runs["packet"]
    summary = net.fidelity.summary()
    assert summary["fluid_flows"] == 0
    assert summary["reasons"] == {"injected_loss": 1}
