"""Integration test for the §6.3 control-plane deep dive."""

from repro.experiments.deepdive_control_plane import run


def test_deepdive_invariants():
    result = run(preset="quick", fan_in=6, flow_bytes=50_000)
    rows = {r["metric"]: r for r in result.rows}
    # the data queue saturates around the trim threshold (never far past)
    peak_kb = rows["peak data queue (KB)"]["value"]
    assert peak_kb > 0
    # the control queue stays tiny relative to its capacity
    ctrl_kb = rows["peak control queue (KB)"]["value"]
    assert ctrl_kb < 200
    # trimming engaged and nothing was lost in the control plane
    assert rows["packets trimmed"]["value"] > 0
    assert rows["HO packets lost"]["value"] == 0
    assert rows["flows completed"]["value"] == 6
