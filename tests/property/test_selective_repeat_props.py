"""Property tests for the reliability-scheme frontier (SDR and RIFL).

Hypothesis drives arbitrary arrival orders and loss seeds through the
invariants prose tests can only spot-check:

* **SDR ack vector** — after any arrival permutation, every delivered
  packet is acknowledged (cumulatively or by its vector bit) in the
  very next ack: no hole is ever un-acked after delivery.
* **SDR reorder bound** — the receiver's out-of-order state never
  exceeds its configured bound, and every vector bit refers to a packet
  really buffered; beyond-bound packets are dropped, never acked.
* **SDR repairs exactly the holes** — on an in-order path, the number
  of retransmissions equals the number of injected drops for *any*
  loss pattern, with zero RTOs and zero duplicates delivered.
* **RIFL drop-free links** — hop-level retransmission makes the shimmed
  ``Link.deliver`` drop-free end to end for any loss seed: the e2e
  transport sees no loss, no retransmissions, no timeouts.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import build_network
from repro.rnic.base import TransportConfig
from repro.rnic.sdr import SACK_VECTOR_BITS
from tests.transport.test_sdr import _recv_harness

_fast = settings(max_examples=25, deadline=None)
_slow = settings(max_examples=10, deadline=None)


def _vector_psns(ack) -> set[int]:
    """Decode an ack's vector into the PSNs it acknowledges."""
    psns, bitmap, base = set(), ack.sack_bitmap, ack.ack_psn + 1
    while bitmap:
        low = bitmap & -bitmap
        psns.add(base + low.bit_length() - 1)
        bitmap ^= low
    return psns


@_fast
@given(order=st.permutations(tuple(range(12))))
def test_no_hole_ever_unacked_after_delivery(order):
    """Every delivered packet is covered by the very next ack."""
    sim, rnic, flow, acks, push = _recv_harness()
    delivered: set[int] = set()
    for psn in order:
        push(psn)
        delivered.add(psn)
        ack = acks[-1]
        epsn = ack.ack_psn + 1
        # Cumulative part covers exactly the delivered prefix...
        assert set(range(epsn)) <= delivered
        # ...and every delivered packet above it has its vector bit set.
        vector = _vector_psns(ack)
        for p in delivered:
            if p >= epsn:
                assert p - epsn < SACK_VECTOR_BITS
                assert p in vector
    assert acks[-1].ack_psn == len(order) - 1
    assert acks[-1].sack_bitmap == 0


@_fast
@given(order=st.permutations(tuple(range(16))), bound=st.integers(2, 8))
def test_reorder_buffer_never_exceeds_bound(order, bound):
    cfg = TransportConfig(sdr_reorder_window_pkts=bound)
    sim, rnic, flow, acks, push = _recv_harness(cfg)
    mtu = rnic.config.mtu_payload
    for psn in order:
        push(psn)
        state = rnic._rcv[next(iter(rnic._rcv))]
        assert len(state.ooo) < bound         # strictly: ePSN is never OOO
        # Every vector bit points at a packet the receiver truly holds;
        # beyond-bound discards are therefore never acknowledged.
        assert _vector_psns(acks[-1]) <= state.ooo
    # Conservation: each packet was delivered exactly once or dropped at
    # the bound and counted.
    assert flow.rx_bytes == (len(order) - rnic.stats.ooo_drops) * mtu


@_slow
@given(loss=st.sampled_from((0.01, 0.03, 0.08)), seed=st.integers(0, 50),
       size=st.integers(30_000, 120_000))
def test_sdr_retransmits_exactly_the_holes(loss, seed, size):
    """In-order path, arbitrary loss pattern: one retransmission per
    injected drop — no RTO blast, no coarse fallback, no duplicate ever
    reaches the application."""
    net = build_network(transport="sdr", topology="direct", num_hosts=2,
                        link_rate=10.0, loss_rate=loss, seed=seed)
    flow = net.open_flow(0, 1, size, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.rx_bytes == size
    drops = sum(h.nic.link.stats.dropped_loss for h in net.hosts)
    assert flow.stats.retx_pkts_sent == drops
    assert flow.stats.dup_pkts_received == 0
    assert flow.stats.timeouts == 0
    assert sum(t.stats.coarse_timeouts for t in net.transports) == 0


@_slow
@given(loss=st.sampled_from((0.01, 0.05, 0.1)), seed=st.integers(0, 50))
def test_rifl_link_deliver_is_drop_free_for_any_seed(loss, seed):
    net = build_network(transport="rifl", topology="direct", num_hosts=2,
                        link_rate=10.0, loss_rate=loss, seed=seed)
    flow = net.open_flow(0, 1, 60_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.rx_bytes == 60_000
    assert flow.stats.retx_pkts_sent == 0
    assert flow.stats.timeouts == 0
    shims = net.fabric.rifl_shims
    # The links rolled zero drops of their own (the shims own the loss)
    # and every frame offered to a shim was eventually forwarded.
    assert sum(s.link.stats.dropped_loss for s in shims) == 0
    assert sum(s.stats.delivered for s in shims) == \
        sum(s.stats.frames for s in shims)
