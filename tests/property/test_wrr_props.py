"""Property-based tests for WRR scheduling and the §4.2 weight rule."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.header import control_queue_share, wrr_weight
from repro.net.packet import Packet, PacketKind
from repro.net.queues import ByteQueue, WrrScheduler


def _pkt():
    return Packet(src=0, dst=1, kind=PacketKind.DATA, size_bytes=100)


@given(st.floats(0.25, 16.0), st.integers(200, 2000))
def test_wrr_ratio_converges_to_weights(weight, rounds):
    queues = [ByteQueue(), ByteQueue()]
    sched = WrrScheduler(queues, [weight, 1.0])
    counts = [0, 0]
    for _ in range(rounds):
        for q in queues:
            if not q:
                q.push(_pkt())
        idx = sched.select()
        counts[idx] += 1
        queues[idx].pop()
    ratio = counts[0] / max(1, counts[1])
    assert 0.7 * weight <= ratio <= 1.4 * weight


@given(st.lists(st.floats(0.5, 8.0), min_size=2, max_size=5),
       st.integers(0, 4))
def test_wrr_never_starves_backlogged_queue(weights, hot):
    """Every backlogged queue is eventually served (no starvation)."""
    assume(hot < len(weights))
    queues = [ByteQueue() for _ in weights]
    sched = WrrScheduler(queues, weights)
    served = [0] * len(weights)
    for _ in range(len(weights) * 200):
        for q in queues:
            if not q:
                q.push(_pkt())
        idx = sched.select()
        served[idx] += 1
        queues[idx].pop()
    assert all(s > 0 for s in served)


@given(st.integers(2, 64), st.floats(2.0, 64.0))
def test_weight_rule_guarantees_drain(radix, r):
    """Whenever the §4.2 formula applies, drain rate covers worst-case
    HO input; otherwise the fallback is used."""
    w = wrr_weight(radix, r, fallback=8.0)
    assert w > 0
    if r > radix - 1:
        input_share = (radix - 1) / r
        assert control_queue_share(w) >= input_share - 1e-9


@given(st.integers(2, 32))
def test_weight_monotone_in_radix(radix):
    r = 20.0
    assume(r > radix)  # stay in the analytic regime
    w_small = wrr_weight(radix, r)
    w_big = wrr_weight(radix + 1, r) if r > radix + 1 else None
    if w_big is not None:
        assert w_big >= w_small
