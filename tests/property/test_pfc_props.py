"""Property tests: PFC losslessness under random traffic patterns."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import build_network

_slow = settings(max_examples=10, deadline=None)


@_slow
@given(seed=st.integers(0, 30), fan=st.integers(2, 5),
       size=st.integers(20_000, 150_000))
def test_pfc_fabric_never_drops(seed, fan, size):
    """Any incast over a PFC fabric with big windows must be lossless."""
    net = build_network(transport="gbn", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0,
                        lb="ecmp", seed=seed, buffer_bytes=400_000,
                        window_bytes=60_000)
    flows = [net.open_flow(s, 7, size, 0) for s in range(fan)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)
    assert net.fabric.switch_stats_sum("dropped_congestion") == 0
    assert net.fabric.switch_stats_sum("dropped_buffer") == 0
    assert all(f.stats.retx_pkts_sent == 0 for f in flows)


@_slow
@given(seed=st.integers(0, 30))
def test_pfc_pause_resume_balanced(seed):
    """Every PAUSE is eventually matched by a RESUME once traffic drains."""
    net = build_network(transport="gbn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, lb="ecmp", seed=seed,
                        buffer_bytes=120_000, window_bytes=80_000)
    flows = [net.open_flow(0, 2, 300_000, 0), net.open_flow(1, 3, 300_000, 0)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)
    for sw in net.fabric.switches:
        assert sw.pfc.pause_frames == sw.pfc.resume_frames
        assert all(b == 0 for b in sw.pfc.ingress_bytes)
        assert not any(sw.pfc.pause_sent)


@_slow
@given(seed=st.integers(0, 20), fan=st.integers(2, 4))
def test_mp_rdma_over_pfc_lossless(seed, fan):
    net = build_network(transport="mp_rdma", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0,
                        lb="ecmp", seed=seed, buffer_bytes=400_000)
    flows = [net.open_flow(s, 7, 80_000, 0) for s in range(fan)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)
    assert net.fabric.switch_stats_sum("dropped_congestion") == 0
