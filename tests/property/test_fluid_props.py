"""Property tests for the hybrid fidelity tier (repro.sim.fidelity).

The tier's whole premise: for an *uncontended* flow at zero loss, the
closed-form fluid schedule reproduces the packet-level simulation
**exactly** — same FCT, same delivered bytes, no tolerance.  Hypothesis
sweeps the whitelisted transports, flow sizes (sub-MTU through
multi-chunk), link rates and topologies; any drift is a bug in the
timeline model, not noise.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import build_network
from repro.sim.fidelity import FLUID_TRANSPORTS

_slow = settings(max_examples=30, deadline=None)


def _fct_pair(transport, topology, size, rate, seed, dst=1, **kw):
    """(packet FCT, hybrid FCT, hybrid summary) for one lone flow."""
    fcts = []
    summaries = []
    for fidelity in ("packet", "hybrid"):
        net = build_network(transport=transport, topology=topology,
                            link_rate=rate, seed=seed, fidelity=fidelity,
                            **kw)
        flow = net.open_flow(0, dst, size, 0)
        net.run_until_flows_done(max_events=50_000_000)
        assert flow.completed
        assert flow.rx_bytes == size
        fcts.append(flow.fct_ns())
        summaries.append(net.fidelity.summary() if net.fidelity else None)
    return fcts[0], fcts[1], summaries[1]


@_slow
@given(transport=st.sampled_from(sorted(FLUID_TRANSPORTS)),
       size=st.one_of(st.integers(1, 4096),          # sub-MTU and tiny
                      st.integers(4_097, 600_000)),  # multi-packet/chunk
       rate=st.sampled_from([10.0, 25.0, 100.0]),
       seed=st.integers(0, 20))
def test_uncontended_fluid_fct_exact_direct(transport, size, rate, seed):
    packet, hybrid, summary = _fct_pair(
        transport, "direct", size, rate, seed, num_hosts=2)
    assert summary["fluid_flows"] == 1
    assert summary["escalations"] == 0
    assert hybrid == packet, (
        f"fluid FCT {hybrid} != packet FCT {packet} "
        f"({transport}, {size}B, {rate}G)")


@_slow
@given(transport=st.sampled_from(sorted(FLUID_TRANSPORTS)),
       size=st.integers(1, 300_000),
       dst=st.sampled_from([1, 5]),   # same-leaf and cross-leaf
       seed=st.integers(0, 20))
def test_uncontended_fluid_fct_exact_clos(transport, size, dst, seed):
    packet, hybrid, summary = _fct_pair(
        transport, "clos", size, 10.0, seed,
        num_hosts=8, num_leaves=2, num_spines=2, lb="ar", dst=dst)
    assert summary["fluid_flows"] == 1
    assert hybrid == packet


@_slow
@given(size=st.integers(1, 200_000), seed=st.integers(0, 10))
def test_ineligible_spec_runs_pure_packet(size, seed):
    """A falsifying spec (injected loss) must bypass the fluid tier and
    reproduce the plain packet run bit-for-bit."""
    fcts = []
    for fidelity in ("packet", "hybrid"):
        net = build_network(transport="dcp", topology="direct", num_hosts=2,
                            link_rate=10.0, loss_rate=0.02, lb="ar",
                            seed=seed, fidelity=fidelity)
        flow = net.open_flow(0, 1, size, 0)
        net.run_until_flows_done(max_events=50_000_000)
        assert flow.completed
        fcts.append((flow.fct_ns(), flow.stats.data_pkts_sent,
                     flow.stats.retx_pkts_sent, net.sim.events_processed))
        if net.fidelity is not None:
            s = net.fidelity.summary()
            assert s["fluid_flows"] == 0
            assert s["reasons"].get("injected_loss") == 1
    assert fcts[0] == fcts[1]
