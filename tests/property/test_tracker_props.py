"""Property-based tests: the three tracking schemes against an oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracking import (BdpBitmapTracker, CounterTracker,
                                 LinkedChunkTracker)


@given(st.lists(st.integers(0, 63), min_size=1, max_size=300))
def test_bdp_bitmap_matches_set_oracle(psns):
    tracker = BdpBitmapTracker(window_pkts=64)
    oracle: set[int] = set()
    for psn in psns:
        accepted = tracker.record(psn)
        assert accepted == (psn not in oracle)
        oracle.add(psn)


@given(st.lists(st.integers(0, 500), min_size=1, max_size=300))
def test_linked_chunk_matches_set_oracle(psns):
    tracker = LinkedChunkTracker(chunk_bits=16)
    oracle: set[int] = set()
    for psn in psns:
        accepted = tracker.record(psn)
        assert accepted == (psn not in oracle)
        oracle.add(psn)


@given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
def test_linked_chunk_memory_bounded_by_max_psn(psns):
    tracker = LinkedChunkTracker(chunk_bits=16)
    for psn in psns:
        tracker.record(psn)
    assert tracker.memory_bits <= (max(psns) // 16 + 1) * 16


@given(st.data())
def test_counter_tracker_message_completion_oracle(data):
    """Counting completes a message exactly when all packets arrived,
    for any arrival interleaving (exactly-once assumption held)."""
    num_msgs = data.draw(st.integers(1, 5))
    sizes = [data.draw(st.integers(1, 8)) for _ in range(num_msgs)]
    arrivals = [(m, p) for m, size in enumerate(sizes) for p in range(size)]
    order = data.draw(st.permutations(arrivals))
    tracker = CounterTracker()
    seen: dict[int, int] = {}
    completed: set[int] = set()
    for msn, _p in order:
        done = tracker.record(msn, sizes[msn], sretry_no=0)
        seen[msn] = seen.get(msn, 0) + 1
        if done:
            assert seen[msn] == sizes[msn]
            completed.add(msn)
    assert completed == set(range(num_msgs))
    emsn, cqes = tracker.advance_emsn()
    assert emsn == num_msgs
    assert cqes == sorted(cqes)


@given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
def test_counter_tracker_retry_rounds_monotone(retries):
    """rRetryNo only moves forward; stale rounds never count."""
    tracker = CounterTracker()
    best = 0
    for r in retries:
        tracker.record(0, expected_pkts=100, sretry_no=r)
        best = max(best, r)
        assert tracker.tracks[0].rretry_no == best


@given(st.integers(1, 14))
def test_counter_width_matches_bits(bits):
    """A 14-bit counter covers the MB-scale messages of §4.5."""
    max_pkts = 2 ** bits - 1
    tracker = CounterTracker()
    for _ in range(max_pkts - 1):
        assert not tracker.record(0, max_pkts, 0)
    assert tracker.record(0, max_pkts, 0)
