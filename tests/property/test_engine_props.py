"""Property-based tests for the event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=200))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()), min_size=1,
                max_size=100))
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    tokens = []
    for delay, cancel in entries:
        token = sim.schedule(delay, lambda i=len(tokens): fired.append(i))
        tokens.append((token, cancel))
    for token, cancel in tokens:
        if cancel:
            token.cancel()
    sim.run()
    expected = {i for i, (_t, cancel) in enumerate(tokens) if not cancel}
    assert set(fired) == expected


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=100),
       st.integers(0, 10**6))
def test_run_until_partitions_execution(delays, split):
    """Running to t then to the end equals running straight through."""
    def collect(two_phase: bool):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        if two_phase:
            sim.run(until=split)
            sim.run()
        else:
            sim.run()
        return fired

    assert collect(True) == collect(False)


# ---------------------------------------------- run(until=...) semantics
@given(st.lists(st.integers(0, 10**6), min_size=0, max_size=100),
       st.integers(0, 10**6))
def test_run_until_clock_lands_exactly_on_until(delays, until):
    """After ``run(until=t)`` the clock reads exactly ``t`` — whether the
    heap drained early, events remain beyond ``t``, or no events existed
    at all — and exactly the events with ``time <= t`` have fired."""
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=until)
    assert sim.now == until
    assert sorted(fired) == sorted(d for d in delays if d <= until)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=50))
def test_run_until_boundary_events_fire(delays):
    """Events scheduled exactly at ``until`` execute (closed interval)."""
    sim = Simulator()
    boundary = max(delays)
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=boundary)
    assert len(fired) == len(delays)


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=60),
       st.lists(st.integers(0, 10**6), min_size=1, max_size=5))
def test_run_until_monotone_resumption(delays, cuts):
    """Any monotone sequence of run(until=...) cuts yields the same
    firing order as one uninterrupted run, and the clock never regresses."""
    def fire_all():
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run()
        return fired

    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    clock_readings = []
    for cut in sorted(cuts):
        sim.run(until=cut)
        clock_readings.append(sim.now)
    sim.run()
    assert fired == fire_all()
    assert clock_readings == sorted(clock_readings)


# ------------------------------------------- lazy CancelledToken behaviour
@given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()), min_size=1,
                max_size=60))
def test_cancellation_is_lazy_entries_stay_in_heap(entries):
    """cancel() must not eagerly remove heap entries (that would turn an
    O(log n) cancel into O(n)); cancelled entries linger in ``pending``
    until their pop, yet ``events_processed`` counts only real firings."""
    sim = Simulator()
    tokens = []
    for delay, _cancel in entries:
        tokens.append(sim.schedule(delay, lambda: None))
    cancelled = 0
    for token, (_delay, cancel) in zip(tokens, entries):
        if cancel:
            token.cancel()
            cancelled += 1
    # Lazy: the heap still holds every entry, cancelled or not.
    assert sim.pending() == len(entries)
    sim.run()
    assert sim.pending() == 0
    assert sim.events_processed == len(entries) - cancelled


@given(st.lists(st.integers(0, 1000), min_size=2, max_size=40),
       st.data())
def test_cancel_from_within_an_event_suppresses_later_events(delays, data):
    """A callback may cancel any not-yet-fired event, including one at
    its own timestamp scheduled after it (FIFO makes 'after' well
    defined)."""
    sim = Simulator()
    delays = sorted(delays)
    tokens = []
    fired = []
    canceller_idx = data.draw(st.integers(0, len(delays) - 2))
    victim_idx = data.draw(st.integers(canceller_idx + 1, len(delays) - 1))

    def make_cb(i):
        def cb():
            fired.append(i)
            if i == canceller_idx:
                tokens[victim_idx].cancel()
        return cb

    for i, d in enumerate(delays):
        tokens.append(sim.schedule(d, make_cb(i)))
    sim.run()
    assert victim_idx not in fired
    assert fired == [i for i in range(len(delays)) if i != victim_idx]


@given(st.integers(0, 1000))
def test_peek_time_skips_cancelled_heads(delay):
    sim = Simulator()
    early = sim.schedule(delay, lambda: None)
    sim.schedule(delay + 7, lambda: None)
    early.cancel()
    assert sim.peek_time() == delay + 7


# --------------------------------------- FIFO order at equal timestamps
@given(st.integers(1, 60), st.integers(0, 10**6))
def test_same_timestamp_events_fire_in_fifo_order(n, when):
    """Equal-time events fire in scheduling order (the heap's sequence
    number breaks ties) — transports rely on this for ACK-before-data
    causality at a shared timestamp."""
    sim = Simulator()
    fired = []
    for i in range(n):
        sim.schedule(when, lambda i=i: fired.append(i))
    sim.run()
    assert fired == list(range(n))


@given(st.lists(st.integers(0, 50), min_size=1, max_size=80))
def test_fifo_tiebreak_composes_with_time_order(delays):
    """Across mixed timestamps: sort by (time, scheduling index) exactly."""
    sim = Simulator()
    fired = []
    for i, d in enumerate(delays):
        sim.schedule(d, lambda i=i: fired.append(i))
    sim.run()
    expected = [i for _d, i in sorted((d, i) for i, d in enumerate(delays))]
    assert fired == expected


@given(st.integers(1, 40), st.integers(0, 1000))
def test_fifo_holds_for_events_scheduled_mid_run(n, when):
    """Zero-delay events scheduled from inside a callback run after
    already-queued events at the same timestamp, still FIFO."""
    sim = Simulator()
    fired = []

    def spawn():
        for i in range(n):
            sim.schedule(0, lambda i=i: fired.append(("child", i)))

    sim.schedule(when, spawn)
    for i in range(n):
        sim.schedule(when, lambda i=i: fired.append(("sibling", i)))
    sim.run()
    assert fired == ([("sibling", i) for i in range(n)]
                     + [("child", i) for i in range(n)])


@given(st.integers(1, 50))
def test_chained_events_preserve_causality(n):
    sim = Simulator()
    seen = []

    def step(i):
        seen.append(i)
        if i < n:
            sim.schedule(10, lambda: step(i + 1))

    sim.schedule(0, lambda: step(1))
    sim.run()
    assert seen == list(range(1, n + 1))
    assert sim.now == (n - 1) * 10
