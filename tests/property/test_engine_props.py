"""Property-based tests for the event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1,
                max_size=200))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(st.lists(st.tuples(st.integers(0, 1000), st.booleans()), min_size=1,
                max_size=100))
def test_cancelled_events_never_fire(entries):
    sim = Simulator()
    fired = []
    tokens = []
    for delay, cancel in entries:
        token = sim.schedule(delay, lambda i=len(tokens): fired.append(i))
        tokens.append((token, cancel))
    for token, cancel in tokens:
        if cancel:
            token.cancel()
    sim.run()
    expected = {i for i, (_t, cancel) in enumerate(tokens) if not cancel}
    assert set(fired) == expected


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=100),
       st.integers(0, 10**6))
def test_run_until_partitions_execution(delays, split):
    """Running to t then to the end equals running straight through."""
    def collect(two_phase: bool):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        if two_phase:
            sim.run(until=split)
            sim.run()
        else:
            sim.run()
        return fired

    assert collect(True) == collect(False)


@given(st.integers(1, 50))
def test_chained_events_preserve_causality(n):
    sim = Simulator()
    seen = []

    def step(i):
        seen.append(i)
        if i < n:
            sim.schedule(10, lambda: step(i + 1))

    sim.schedule(0, lambda: step(1))
    sim.run()
    assert seen == list(range(1, n + 1))
    assert sim.now == (n - 1) * 10
