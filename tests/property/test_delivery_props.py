"""End-to-end property tests: delivery invariants under random loss.

These exercise whole transport stacks through a lossy switch with
hypothesis-chosen loss rates, flow sizes and seeds, asserting the
invariants that must hold regardless of timing:

* every flow completes (reliability),
* exactly ``size`` payload bytes are delivered (no loss, no dup
  counting),
* DCP never times out on data loss and never delivers duplicates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import build_network

_slow = settings(max_examples=12, deadline=None)


@_slow
@given(loss=st.sampled_from([0.0, 0.005, 0.02, 0.08]),
       size=st.integers(2_000, 120_000),
       seed=st.integers(0, 50))
def test_dcp_reliability_invariants(loss, size, seed):
    net = build_network(transport="dcp", topology="testbed", num_hosts=4,
                        cross_links=2, link_rate=10.0, loss_rate=loss,
                        lb="ar", seed=seed)
    flow = net.open_flow(0, 2, size, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert flow.rx_bytes == size
    assert flow.stats.dup_pkts_received == 0          # exactly once
    acks_dropped = net.fabric.switch_stats_sum("acks_dropped")
    assert flow.stats.timeouts <= acks_dropped        # never from data loss
    # conservation: every HO the sender saw produced one retransmission
    sender = net.transports[0]
    assert flow.stats.retx_pkts_sent >= sender.ho_received - sender.stale_ho


@_slow
@given(transport=st.sampled_from(["gbn", "irn", "rack_tlp", "timeout"]),
       loss=st.sampled_from([0.0, 0.01, 0.05]),
       seed=st.integers(0, 30))
def test_baseline_transports_deliver_exactly_once(transport, loss, seed):
    net = build_network(transport=transport, topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=loss,
                        lb="ecmp", seed=seed)
    flow = net.open_flow(0, 2, 50_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed, f"{transport} stuck at loss={loss} seed={seed}"
    assert flow.rx_bytes == 50_000


@_slow
@given(seed=st.integers(0, 40), fan=st.integers(2, 6))
def test_dcp_incast_never_wedges(seed, fan):
    net = build_network(transport="dcp", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0,
                        lb="ar", seed=seed, buffer_bytes=300_000)
    flows = [net.open_flow(s, 7, 40_000, 0) for s in range(fan)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)
    for f in flows:
        assert f.rx_bytes == 40_000


@_slow
@given(seed=st.integers(0, 40))
def test_dcp_ho_conservation(seed):
    """trims == turned + dropped-in-control-queue (+ none lost elsewhere)."""
    net = build_network(transport="dcp", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0,
                        lb="ar", seed=seed, buffer_bytes=300_000)
    flows = [net.open_flow(s, 7, 60_000, 0) for s in range(4)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)
    trims = net.fabric.switch_stats_sum("trimmed")
    ho_dropped = net.fabric.switch_stats_sum("ho_dropped")
    turned = sum(tr.ho_turned for tr in net.transports)
    received = sum(tr.ho_received for tr in net.transports)
    assert turned + ho_dropped >= trims
    assert received <= turned
