"""Property-based tests for span recording and FCT attribution.

Two families:

* tracker invariants — whatever order packets arrive / ports pause /
  timers fire in, every recorded span satisfies ``start <= end`` and
  the hole-tracking state never emits a reorder span before the hole
  opened;
* partition invariants — :func:`flow_breakdown` is an exact partition
  of the flow window for *arbitrary* span soups: components are
  non-negative, sum exactly to the FCT, and respect the attribution
  priority (an instant covered by a pause never counts as queue time).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.latency import (COMPONENTS, KIND_TO_COMPONENT, PRIORITY,
                                    flow_breakdown)
from repro.obs.spans import SPAN_KINDS, SpanTracker

WINDOW = 1_000_000

span_rows = st.lists(
    st.tuples(st.integers(-1000, WINDOW + 1000),      # start (may stick out)
              st.integers(0, WINDOW // 4),            # duration
              st.sampled_from(SPAN_KINDS),
              st.sampled_from([-1, 1, 2])),           # flow id
    max_size=60).map(
    lambda rows: [(s, s + d, kind, fid, -1, "x")
                  for s, d, kind, fid in rows])


@given(span_rows)
def test_breakdown_is_exact_nonnegative_partition(rows):
    b = flow_breakdown(rows, 1, 0, WINDOW)
    assert all(b[c] >= 0 for c in COMPONENTS)
    assert sum(b[c] for c in COMPONENTS) == b["fct_ns"] == WINDOW
    assert b["residual_ns"] == 0


@given(span_rows)
def test_breakdown_components_bounded_by_window(rows):
    b = flow_breakdown(rows, 1, 0, WINDOW)
    for c in COMPONENTS:
        assert b[c] <= WINDOW


@given(span_rows, st.integers(0, 5))
def test_breakdown_priority_no_lower_kind_leaks_through(rows, k):
    """Blanket the whole window with priority-k spans: every weaker
    kind must attribute zero (the stronger kind claims each instant)."""
    kind = PRIORITY[k]
    fid = -1 if kind == "pause" else 1
    covered = rows + [(0, WINDOW, kind, fid, -1, "blanket")]
    b = flow_breakdown(covered, 1, 0, WINDOW)
    stronger = {KIND_TO_COMPONENT[p] for p in PRIORITY[:k]}
    weaker = [KIND_TO_COMPONENT[p] for p in PRIORITY[k + 1:]] + ["host_ns"]
    assert all(b[c] == 0 for c in weaker)
    assert b[KIND_TO_COMPONENT[kind]] == WINDOW - sum(
        b[c] for c in stronger)


@given(st.lists(st.tuples(st.integers(0, 30),        # psn
                          st.integers(0, 10_000)),   # arrival time offset
                min_size=1, max_size=80))
def test_tracker_spans_well_formed_under_any_arrival_order(arrivals):
    t = SpanTracker()
    t.note_flow(1, 0)
    now = 0
    for psn, dt in arrivals:
        now += dt
        t.data_arrival(1, psn, now, "r")
    for start, end, kind, fid, _uid, _actor in t.spans:
        assert start <= end
        assert kind == "reorder"
        assert fid == 1
        assert 0 <= start and end <= now


@given(st.lists(st.tuples(st.sampled_from(["pause", "resume", "step"]),
                          st.integers(1, 100)), max_size=60))
@settings(max_examples=60)
def test_pause_spans_never_invert(ops):
    t = SpanTracker()
    now = 0
    for op, dt in ops:
        now += dt
        if op == "pause":
            t.pause("nic0", now)
        elif op == "resume":
            t.resume("nic0", now)
    t.finalize(now + 1)
    for start, end, kind, *_ in t.spans:
        assert kind == "pause"
        assert start < end <= now + 1


@given(st.lists(st.integers(1, 50_000), min_size=1, max_size=30))
def test_timeout_stalls_chain_without_overlap(gaps):
    """Consecutive timeouts partition the silence: each stall span
    starts where the previous one ended, so no instant double-counts."""
    t = SpanTracker()
    t.note_flow(7, 0)
    now = 0
    for gap in gaps:
        now += gap
        t.timeout(7, now, "rnic7")
    stalls = [s for s in t.spans if s[2] == "retx_stall"]
    assert len(stalls) == len(gaps)
    prev_end = 0
    for start, end, *_ in stalls:
        assert start == prev_end
        assert start < end
        prev_end = end
    assert prev_end == now
