"""Property tests: campaign compilation is pure and strict.

* same spec -> identical point ids, spec dicts and cache keys (and the
  input spec is never mutated);
* chaos schedules hash into the cache key;
* random invalid mutations (unknown fields, empty groups, malformed
  chaos schedules) are rejected with pointed errors.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import (CampaignError, compile_campaign,
                             validate_campaign)
from repro.runner.spec_hash import cache_key

import pytest

_fast = settings(max_examples=40, deadline=None)

_TRANSPORTS = ["dcp", "gbn", "irn", "mp_rdma", "rack_tlp", "rifl", "sdr",
               "tcp", "timeout"]

flows_layers = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3),
              st.integers(1, 100_000), st.integers(0, 1_000_000)),
    min_size=1, max_size=6,
).map(lambda quads: {
    "kind": "flows",
    "flows": [[s, (d if d != s else (s + 1) % 4), size, start]
              for s, d, size, start in quads]})

bursting_layers = st.builds(
    lambda size, period, bursts, stride: {
        "kind": "bursting", "burst_bytes": size, "period_ns": period,
        "bursts": bursts, "stride": stride},
    st.integers(100, 50_000), st.integers(1_000, 500_000),
    st.integers(1, 4), st.integers(1, 3))

transport_groups = st.lists(
    st.sampled_from(_TRANSPORTS), min_size=1, max_size=4, unique=True,
).map(lambda ts: {"name": "transport", "axis": "spec.transport",
                  "values": ts})

mtu_groups = st.lists(
    st.integers(200, 4000), min_size=1, max_size=3, unique=True,
).map(lambda vs: {"name": "mtu", "axis": "spec.mtu_payload", "values": vs})


@st.composite
def campaign_specs(draw):
    layers = [draw(st.one_of(flows_layers, bursting_layers))]
    groups = [draw(transport_groups)]
    if draw(st.booleans()):
        groups.append(draw(mtu_groups))
    spec = {
        "name": draw(st.sampled_from(["c1", "soak", "mix-2"])),
        "topology": {"topology": "direct", "num_hosts": 4},
        "workload": layers,
        "groups": groups,
        "seed": draw(st.integers(0, 2**16)),
    }
    if draw(st.booleans()):
        spec["sim"] = {"max_events": draw(st.integers(1, 10_000_000))}
    return spec


def _keys(compiled):
    return [cache_key(compiled.key, p.point_id, p.spec, p.params)
            for p in compiled.points]


@_fast
@given(campaign_specs())
def test_compile_is_pure(spec):
    frozen = copy.deepcopy(spec)
    a = compile_campaign(spec, "quick")
    b = compile_campaign(spec, "quick")
    assert spec == frozen, "compile mutated its input spec"
    assert [p.point_id for p in a.points] == [p.point_id for p in b.points]
    assert [p.spec.to_dict() for p in a.points] == \
           [p.spec.to_dict() for p in b.points]
    assert [p.params for p in a.points] == [p.params for p in b.points]
    assert _keys(a) == _keys(b)
    # point ids are unique within one compilation
    ids = [p.point_id for p in a.points]
    assert len(set(ids)) == len(ids)


@_fast
@given(campaign_specs(), st.integers(0, 2**16))
def test_seed_changes_nothing_for_deterministic_layers(spec, other_seed):
    # flows/bursting layers are layout-deterministic: the campaign seed
    # reaches the NetworkSpec (cache key) but never reshuffles the grid.
    a = compile_campaign(spec, "quick")
    spec2 = copy.deepcopy(spec)
    spec2["seed"] = other_seed
    b = compile_campaign(spec2, "quick")
    assert [p.point_id for p in a.points] == [p.point_id for p in b.points]
    assert [p.params["flows"] for p in a.points] == \
           [p.params["flows"] for p in b.points]


@_fast
@given(campaign_specs(),
       st.sampled_from([0.05, 0.15, 0.35]),
       st.sampled_from([0.45, 0.6, 0.95]))
def test_chaos_schedule_hashes_into_cache_key(spec, rate_a, rate_b):
    spec = copy.deepcopy(spec)
    spec["topology"] = {"topology": "testbed", "num_hosts": 4,
                        "cross_links": 1}
    spec["workload"] = [{"kind": "flows", "flows": [[0, 2, 10_000, 0]]}]
    spec["chaos"] = {"scenario": "loss_burst", "loss_rate": rate_a}
    a = compile_campaign(spec, "quick")
    spec["chaos"]["loss_rate"] = rate_b
    b = compile_campaign(spec, "quick")
    assert all(ka != kb for ka, kb in zip(_keys(a), _keys(b)))
    # while specs (the network side) stay identical
    assert [p.spec.to_dict() for p in a.points] == \
           [p.spec.to_dict() for p in b.points]


@_fast
@given(campaign_specs(), st.sampled_from([
    "unknown_top", "empty_groups", "empty_values", "bad_kind",
    "bad_chaos_scenario", "flap_without_period", "dup_group"]))
def test_invalid_mutations_rejected_with_pointed_errors(spec, mutation):
    spec = copy.deepcopy(spec)
    if mutation == "unknown_top":
        spec["surprise"] = 1
        expect = "surprise"
    elif mutation == "empty_groups":
        spec["groups"] = []
        expect = "groups"
    elif mutation == "empty_values":
        spec["groups"][0]["values"] = []
        expect = "groups[0].values"
    elif mutation == "bad_kind":
        spec["workload"][0]["kind"] = "quantum"
        expect = "workload[0].kind"
    elif mutation == "bad_chaos_scenario":
        spec["chaos"] = {"scenario": "gremlins"}
        expect = "chaos.scenario"
    elif mutation == "flap_without_period":
        spec["chaos"] = {"scenario": "link_flap", "flaps": 2,
                         "period_ns": 0}
        expect = "chaos.period_ns"
    else:
        spec["groups"] = [spec["groups"][0], copy.deepcopy(spec["groups"][0])]
        expect = "groups[1]."
    with pytest.raises(CampaignError) as exc:
        validate_campaign(spec)
    assert exc.value.path.startswith(expect.rstrip("."))
    assert str(exc.value).startswith(exc.value.path)
