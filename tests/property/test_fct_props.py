"""Property-based tests for the statistics helpers."""

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.analysis.fct import cdf_points, percentile, slowdown_bins
from repro.rnic.base import Flow

finite_floats = st.floats(min_value=0.0, max_value=1e9,
                          allow_nan=False, allow_infinity=False)


@given(st.lists(finite_floats, min_size=1, max_size=500),
       st.floats(0, 100))
def test_percentile_within_range(values, p):
    result = percentile(values, p)
    assert min(values) <= result <= max(values)


@given(st.lists(finite_floats, min_size=1, max_size=200))
def test_percentile_monotone_in_p(values):
    ps = [0, 25, 50, 75, 95, 99, 100]
    results = [percentile(values, p) for p in ps]
    assert results == sorted(results)


@given(st.lists(finite_floats, min_size=1, max_size=200),
       finite_floats)
def test_percentile_translation_invariance(values, shift):
    assume(shift < 1e6)
    shifted = [v + shift for v in values]
    base = percentile(values, 90)
    moved = percentile(shifted, 90)
    assert abs(moved - (base + shift)) < 1e-6 * max(1.0, base + shift)


@given(st.lists(finite_floats, min_size=1, max_size=300))
def test_cdf_is_valid_distribution(values):
    pts = cdf_points(values)
    probs = [p for _v, p in pts]
    vals = [v for v, _p in pts]
    assert probs == sorted(probs)
    assert vals == sorted(vals)
    assert probs[-1] == 1.0
    assert all(0 < p <= 1 for p in probs)


@given(st.lists(st.tuples(st.integers(1_000, 30_000_000),
                          st.floats(1.0, 100.0)),
                min_size=1, max_size=200))
def test_slowdown_bins_conserve_flows(pairs):
    flows = []
    for size, sd in pairs:
        f = Flow(0, 1, size, 0)
        f.rx_complete_ns = 100
        f.rx_bytes = size
        flows.append((f, sd))
    bins = slowdown_bins(flows)
    assert sum(b.count for b in bins) == len(flows)
    for b in bins:
        assert b.p50 <= b.p95 <= b.p99
