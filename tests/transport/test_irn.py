"""Behavioral tests for IRN (RNIC-SR): SACKs, recovery mode, RTOs."""

from repro.experiments.common import build_network
from repro.rnic.irn import IrnTransport
from tests.conftest import drain, make_direct_pair, send_flow


def test_basic_transfer():
    sim, fab, a, b = make_direct_pair(IrnTransport)
    flow = send_flow(sim, a, b, 100_000)
    drain(sim)
    assert flow.completed
    assert flow.stats.retx_pkts_sent == 0


def test_selective_repeat_is_precise_on_single_path():
    """On a single path, IRN retransmits roughly only what was lost."""
    net = build_network(transport="irn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.02,
                        lb="ecmp", seed=13)
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    drops = net.fabric.switch_stats_sum("dropped_forced")
    # selective repeat: retx close to the drop count (allow RTO extras)
    assert flow.stats.retx_pkts_sent <= 3 * drops + 10


def test_spurious_retransmissions_under_packet_spray():
    """Issue #1 (§2.2): packet-level LB + IRN => spurious retransmission."""
    net = build_network(transport="irn", topology="testbed", num_hosts=4,
                        cross_links=4, link_rate=10.0, loss_rate=0.0,
                        lb="spray", seed=14,
                        # skew: one slow path forces persistent reordering
                        cross_port_rates={0: 10.0, 1: 10.0, 2: 10.0, 3: 2.5})
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    drops = net.fabric.switch_stats_sum("dropped_forced") + \
        net.fabric.switch_stats_sum("dropped_congestion")
    assert drops == 0
    assert flow.stats.retx_pkts_sent > 0          # retransmitted with no loss
    assert flow.stats.dup_pkts_received > 0       # duplicates at the receiver


def test_no_spurious_retx_single_path_no_loss():
    net = build_network(transport="irn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, lb="ecmp", seed=15)
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert flow.stats.retx_pkts_sent == 0


def test_recovery_exits_on_cumulative_pass():
    """After recovery the sender resumes clean transmission."""
    net = build_network(transport="irn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.01,
                        lb="ecmp", seed=16)
    flow = net.open_flow(0, 2, 1_000_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    tr = net.transports[0]
    st = tr._send_state(list(tr.qps.values())[0])
    assert not st.in_recovery
    assert not st.rtx_queue


def test_retransmitted_once_per_recovery():
    """IRN never fast-retransmits the same PSN twice in one episode —
    a re-dropped retransmission waits for the RTO (Issue #2)."""
    net = build_network(transport="irn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.1,
                        lb="ecmp", seed=17)
    flow = net.open_flow(0, 2, 200_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    # heavy loss with re-dropped retransmissions must produce timeouts
    assert flow.stats.timeouts > 0


def test_tail_loss_needs_rto():
    """Losing only the tail packet generates no SACK: RTO required."""
    net = build_network(transport="irn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.25,
                        lb="ecmp", seed=18)
    flow = net.open_flow(0, 2, 3_000, 0)  # 3 packets: tail loss likely
    net.run_until_flows_done(max_events=20_000_000)
    assert flow.completed


def test_exactly_once_payload_accounting():
    net = build_network(transport="irn", topology="testbed", num_hosts=4,
                        cross_links=2, link_rate=10.0, loss_rate=0.05,
                        lb="spray", seed=19)
    flow = net.open_flow(0, 2, 300_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.rx_bytes == 300_000
