"""Behavioral tests for RACK-TLP."""

from repro.experiments.common import build_network
from repro.rnic.rack_tlp import RackTlpTransport
from tests.conftest import drain, make_direct_pair, send_flow


def test_basic_transfer():
    sim, fab, a, b = make_direct_pair(RackTlpTransport)
    flow = send_flow(sim, a, b, 100_000)
    drain(sim)
    assert flow.completed
    assert flow.stats.retx_pkts_sent == 0


def test_loss_recovered_without_rto():
    """RACK detects mid-flow losses via the reordering window, no RTO."""
    net = build_network(transport="rack_tlp", topology="testbed",
                        num_hosts=4, cross_links=1, link_rate=10.0,
                        loss_rate=0.01, lb="ecmp", seed=41)
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.stats.retx_pkts_sent > 0
    assert flow.stats.timeouts == 0


def test_reordering_tolerated_without_spurious_retx():
    """One reordering-window of tolerance: pure reordering, no retx."""
    net = build_network(transport="rack_tlp", topology="testbed",
                        num_hosts=4, cross_links=2, link_rate=10.0,
                        loss_rate=0.0, lb="spray", seed=42)
    flow = net.open_flow(0, 2, 300_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    # equal-rate spraying keeps skew below min RTT: no spurious marks
    assert flow.stats.retx_pkts_sent == 0


def test_tlp_probe_recovers_tail_loss():
    """Tail loss: the TLP probe elicits SACKs instead of waiting for RTO."""
    sim, fab, a, b = make_direct_pair(RackTlpTransport)
    flow = send_flow(sim, a, b, 10_000)
    # drop the last data packet once on the wire
    link = a.nic.link
    orig = link.deliver
    state = {"dropped": False}

    def drop_tail(packet):
        from repro.net.packet import PacketKind
        if (packet.kind is PacketKind.DATA and packet.psn == 9
                and not state["dropped"]):
            state["dropped"] = True
            return
        orig(packet)

    link.deliver = drop_tail
    drain(sim)
    assert flow.completed
    assert state["dropped"]
    st = a._send_state(list(a.qps.values())[0])
    assert st.tlp_probes >= 1
    assert flow.stats.timeouts == 0  # TLP beat the RTO


def test_retransmission_delayed_by_reordering_window():
    """RACK trades latency for accuracy: recovery waits ~1 RTT."""
    net_r = build_network(transport="rack_tlp", topology="testbed",
                          num_hosts=4, cross_links=1, link_rate=10.0,
                          loss_rate=0.02, lb="ecmp", seed=43)
    f_r = net_r.open_flow(0, 2, 500_000, 0)
    net_r.run_until_flows_done(max_events=40_000_000)

    net_d = build_network(transport="dcp", topology="testbed",
                          num_hosts=4, cross_links=1, link_rate=10.0,
                          loss_rate=0.02, lb="ecmp", seed=43)
    f_d = net_d.open_flow(0, 2, 500_000, 0)
    net_d.run_until_flows_done(max_events=40_000_000)

    assert f_r.completed and f_d.completed
    assert f_d.fct_ns() <= f_r.fct_ns()  # Fig 17 ordering: DCP >= RACK


def test_rtt_estimation():
    sim, fab, a, b = make_direct_pair(RackTlpTransport, prop_delay_ns=2_000)
    flow = send_flow(sim, a, b, 50_000)
    drain(sim)
    st = a._send_state(list(a.qps.values())[0])
    assert flow.completed
    assert 4_000 <= st.min_rtt < 50_000
    assert st.srtt > 0
