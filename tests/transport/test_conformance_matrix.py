"""Transport conformance matrix: exactly-once delivery under loss.

Every transport in the registry — whatever its recovery machinery
(go-back-N, SACK, RACK-TLP timers, DCP header-only round trips, TCP
software stack) — must hand the application *all* bytes of every flow
*exactly once*, with and without forced loss, on a switchless direct
cable and on a small CLOS fabric.  This is the delivery-correctness bar
of "Revisiting Network Support for RDMA": cross-scheme performance
comparisons are meaningless if any scheme silently drops or duplicates
application data.

Exactly-once is asserted observably: ``Flow.rx_bytes`` counts bytes the
receiver wrote to application memory, so a lost-and-never-recovered
byte leaves it short and a double-delivered byte pushes it over.
Receiver-side duplicate *packets* are fine (that's what
``dup_pkts_received`` counts) as long as they are discarded, not
re-delivered.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import Network, NetworkSpec, _transport_registry

LOSS_RATES = (0.0, 0.01, 0.05)
TRANSPORTS = sorted(_transport_registry())

#: The matrix is parametrized straight off the registry, so adding
#: transport #10 is a one-line change *there*; this pin makes the
#: addition (or an accidental removal) loud here too.
EXPECTED_TRANSPORTS = ("dcp", "gbn", "irn", "mp_rdma", "rack_tlp",
                       "rifl", "sdr", "tcp", "timeout")


def test_registry_covers_expected_transports() -> None:
    assert tuple(TRANSPORTS) == EXPECTED_TRANSPORTS, (
        "transport registry changed - extend EXPECTED_TRANSPORTS (and the "
        "docs tables) in the same commit")

# Small flows keep the whole 42-cell matrix in the low seconds while
# still spanning multiple windows, messages and (under loss) recovery
# episodes per flow.
_DIRECT_FLOWS = ((0, 1, 40_000, 0), (1, 0, 40_000, 0), (0, 1, 15_000, 20_000))
_CLOS_FLOWS = ((0, 2, 30_000, 0), (1, 3, 30_000, 5_000), (3, 0, 30_000, 10_000))


def _spec(transport: str, topology: str, loss_rate: float) -> NetworkSpec:
    if topology == "direct":
        return NetworkSpec(transport=transport, topology="direct",
                           num_hosts=2, link_rate=10.0,
                           loss_rate=loss_rate, seed=7)
    return NetworkSpec(transport=transport, topology="clos", num_hosts=4,
                       num_leaves=2, num_spines=2, link_rate=10.0,
                       buffer_bytes=500_000, loss_rate=loss_rate, seed=7)


def _run_matrix_cell(transport: str, topology: str, loss_rate: float):
    net = Network(_spec(transport, topology, loss_rate))
    layout = _DIRECT_FLOWS if topology == "direct" else _CLOS_FLOWS
    flows = [net.open_flow(src, dst, size, start)
             for src, dst, size, start in layout]
    net.run_until_flows_done(max_events=50_000_000)
    return net, flows


@pytest.mark.parametrize("loss_rate", LOSS_RATES)
@pytest.mark.parametrize("topology", ("direct", "clos"))
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_exactly_once_delivery(transport: str, topology: str,
                               loss_rate: float) -> None:
    net, flows = _run_matrix_cell(transport, topology, loss_rate)
    for flow in flows:
        assert flow.completed, (
            f"{transport}/{topology}/loss={loss_rate}: flow "
            f"{flow.src}->{flow.dst} stalled at {flow.rx_bytes}/"
            f"{flow.size_bytes} bytes")
        assert flow.rx_bytes == flow.size_bytes, (
            f"{transport}/{topology}/loss={loss_rate}: flow "
            f"{flow.src}->{flow.dst} delivered {flow.rx_bytes} bytes "
            f"for a {flow.size_bytes}-byte flow "
            f"({'duplicate' if flow.rx_bytes > flow.size_bytes else 'missing'}"
            " delivery)")


@pytest.mark.parametrize("topology", ("direct", "clos"))
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_loss_injection_actually_bites(transport: str, topology: str) -> None:
    """At 5% forced loss the fabric must really drop payload packets.

    Guards the matrix against vacuity — a transport whose packets dodge
    the injector (as TCP's once did) would pass the delivery check
    without ever exercising its recovery path.
    """
    net, _flows = _run_matrix_cell(transport, topology, 0.05)
    if transport == "rifl":
        # RIFL absorbs the forced loss below the transport: the link
        # shims roll the same corruption probability per frame but
        # repair hop-by-hop, so the loss shows up as hop retransmissions
        # rather than fabric drops.
        shims = net.fabric.rifl_shims
        assert sum(s.stats.hop_retx for s in shims) > 0, (
            f"rifl/{topology}: no hop-level corruption observed at 5%")
        return
    if topology == "clos":
        # DCP-Switches turn forced drops into trims (header-only packets)
        # rather than losses, exactly as the paper's P4 program does.
        forced = (net.fabric.switch_stats_sum("dropped_forced")
                  + net.fabric.switch_stats_sum("trimmed"))
        assert forced > 0, (
            f"{transport}/clos: no forced losses observed at 5%")
    else:
        links = [h.nic.link for h in net.hosts]
        assert sum(l.dropped_packets for l in links) > 0, (
            f"{transport}/direct: no forced link losses observed at 5%")
