"""Tests for the verbs-flavoured API: ops, Receive WQEs, CQs (§4.4)."""

import pytest

from repro.core.dcp import DcpTransport
from repro.rnic.verbs import CompletionEntry, RdmaOp, VerbsEndpoint
from tests.conftest import drain, make_direct_pair


def _endpoints(transport_cls=DcpTransport):
    sim, fab, a, b = make_direct_pair(transport_cls)
    ea, eb = VerbsEndpoint(a), VerbsEndpoint(b)
    qa, qb = VerbsEndpoint.connect(ea, eb)
    return sim, ea, eb, qa, qb


def test_write_generates_send_cqe_only():
    sim, ea, eb, qa, qb = _endpoints()
    flow = ea.transfer(eb, qa, 50_000, op=RdmaOp.WRITE, wr_id=7)
    drain(sim)
    assert flow.completed
    send_cqes = ea.poll_cq("send")
    assert len(send_cqes) == 1
    assert send_cqes[0].wr_id == 7
    assert send_cqes[0].op is RdmaOp.WRITE
    assert eb.poll_cq("recv") == []  # one-sided: responder sees nothing


def test_send_consumes_receive_wqe():
    sim, ea, eb, qa, qb = _endpoints()
    eb.post_recv(qb, 50_000, wr_id=42)
    flow = ea.transfer(eb, qa, 50_000, op=RdmaOp.SEND, wr_id=1)
    drain(sim)
    assert flow.completed
    recv_cqes = eb.poll_cq("recv")
    assert len(recv_cqes) == 1
    assert recv_cqes[0].wr_id == 42
    assert recv_cqes[0].is_recv
    assert recv_cqes[0].byte_len == 50_000
    assert eb.rnr_drops == 0


def test_receive_wqes_consumed_in_posting_order():
    """SSN ordering: multiple sends match Receive WQEs in posted order."""
    sim, ea, eb, qa, qb = _endpoints()
    for wr_id in (100, 101, 102):
        eb.post_recv(qb, 10_000, wr_id=wr_id)
    flows = [ea.transfer(eb, qa, 10_000, op=RdmaOp.SEND, wr_id=i)
             for i in range(3)]
    drain(sim)
    assert all(f.completed for f in flows)
    got = [c.wr_id for c in eb.poll_cq("recv")]
    assert got == [100, 101, 102]


def test_missing_receive_wqe_counts_rnr():
    sim, ea, eb, qa, qb = _endpoints()
    flow = ea.transfer(eb, qa, 10_000, op=RdmaOp.SEND)
    drain(sim)
    assert flow.completed
    assert eb.rnr_drops == 1
    assert eb.poll_cq("recv") == []


def test_write_imm_notifies_responder():
    sim, ea, eb, qa, qb = _endpoints()
    eb.post_recv(qb, 20_000, wr_id=5)
    flow = ea.transfer(eb, qa, 20_000, op=RdmaOp.WRITE_IMM)
    drain(sim)
    assert flow.completed
    cqes = eb.poll_cq("recv")
    assert len(cqes) == 1
    assert cqes[0].op is RdmaOp.WRITE_IMM


def test_poll_cq_respects_max_entries():
    sim, ea, eb, qa, qb = _endpoints()
    for i in range(5):
        eb.post_recv(qb, 1_000, wr_id=i)
        ea.transfer(eb, qa, 1_000, op=RdmaOp.SEND)
    drain(sim)
    first = eb.poll_cq("recv", max_entries=2)
    rest = eb.poll_cq("recv", max_entries=16)
    assert len(first) == 2
    assert len(rest) == 3


def test_verbs_over_gbn_too():
    """The verbs layer is transport-agnostic."""
    from repro.rnic.gbn import GbnTransport
    sim, ea, eb, qa, qb = _endpoints(GbnTransport)
    eb.post_recv(qb, 30_000, wr_id=9)
    flow = ea.transfer(eb, qa, 30_000, op=RdmaOp.SEND)
    drain(sim)
    assert flow.completed
    assert [c.wr_id for c in eb.poll_cq("recv")] == [9]


def test_completion_timestamps_ordered():
    sim, ea, eb, qa, qb = _endpoints()
    flows = [ea.transfer(eb, qa, 5_000, op=RdmaOp.WRITE) for _ in range(3)]
    drain(sim)
    ts = [c.timestamp_ns for c in ea.poll_cq("send")]
    assert ts == sorted(ts)
    assert all(f.completed for f in flows)
