"""Protocol edge cases across transports: boundary conditions the main
behavioural suites do not pin down."""

from repro.core.dcp import DcpTransport
from repro.net.packet import PacketKind, make_ack
from repro.rnic.base import TransportConfig
from repro.rnic.gbn import GbnTransport
from repro.rnic.irn import IrnTransport
from tests.conftest import drain, make_direct_pair, send_flow


class TestGbnEdges:
    def test_nak_not_repeated_while_gap_persists(self):
        """GBN receivers NAK once per sequence-error episode, or the NAK
        storm would multiply retransmissions."""
        sim, fab, a, b = make_direct_pair(GbnTransport)
        flow = send_flow(sim, a, b, 20_000)
        naks = []
        orig = b.nic.send_control

        def count(pkt):
            if pkt.kind is PacketKind.NAK:
                naks.append(pkt.ack_psn)
            orig(pkt)

        b.nic.send_control = count
        # drop packets 5..7 once each: a single gap, three OOO arrivals
        link = a.nic.link
        orig_deliver = link.deliver
        dropped = set()

        def lossy(pkt):
            if (pkt.kind is PacketKind.DATA and pkt.psn in (5, 6, 7)
                    and pkt.psn not in dropped):
                dropped.add(pkt.psn)
                return
            orig_deliver(pkt)

        link.deliver = lossy
        drain(sim)
        assert flow.completed
        # one NAK for the whole gap episode (retransmits repair the rest)
        assert len(naks) <= 2

    def test_stale_nak_ignored(self):
        sim, fab, a, b = make_direct_pair(GbnTransport)
        flow = send_flow(sim, a, b, 20_000)
        drain(sim)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        done_nxt = st.snd_nxt
        stale = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                         kind=PacketKind.NAK, ack_psn=done_nxt + 5)
        a._on_nak(qp, stale)  # beyond snd_nxt: must be ignored
        assert st.snd_nxt == done_nxt

    def test_duplicate_ack_harmless(self):
        sim, fab, a, b = make_direct_pair(GbnTransport)
        flow = send_flow(sim, a, b, 10_000)
        drain(sim)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        una = st.snd_una
        old = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                       kind=PacketKind.ACK, ack_psn=0)
        a._on_ack(qp, old)
        assert st.snd_una == una


class TestIrnEdges:
    def test_sack_below_cumulative_ignored(self):
        sim, fab, a, b = make_direct_pair(IrnTransport)
        flow = send_flow(sim, a, b, 20_000)
        drain(sim)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        stale = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                         kind=PacketKind.SACK, ack_psn=st.snd_una - 1,
                         sack_psn=0)
        a._on_sack(qp, stale)
        assert not st.rtx_queue

    def test_recovery_entry_snapshot(self):
        """recovery_high snapshots max_sent at entry; later sends do not
        extend the episode."""
        sim, fab, a, b = make_direct_pair(IrnTransport)
        flow = send_flow(sim, a, b, 100_000)
        sim.run(max_events=150)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        assert st.max_sent > 5
        sack = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                        kind=PacketKind.SACK, ack_psn=st.snd_una - 1,
                        sack_psn=min(st.snd_una + 3, st.max_sent))
        a._on_sack(qp, sack)
        assert st.in_recovery
        snapshot = st.recovery_high
        drain(sim)
        assert flow.completed
        assert not st.in_recovery
        assert st.recovery_high == snapshot

    def test_rtx_queue_skips_repaired_psns(self):
        sim, fab, a, b = make_direct_pair(IrnTransport)
        flow = send_flow(sim, a, b, 50_000)
        sim.run(max_events=300)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        base = st.snd_una
        # queue a retransmission, then mark it SACKed before the NIC pulls
        st.rtx_queue.append(base)
        st.rtx_marked.add(base)
        st.sacked.add(base)
        drain(sim)
        assert flow.completed
        # no duplicate delivery of the repaired PSN
        assert flow.stats.dup_pkts_received == 0


class TestDcpEdges:
    def test_zero_sized_message_rejected(self):
        sim, fab, a, b = make_direct_pair(DcpTransport)
        flow = send_flow(sim, a, b, 1)  # 1 byte is the minimum
        drain(sim)
        assert flow.completed

    def test_stale_ho_after_ack_is_discarded(self):
        cfg = TransportConfig(max_message_bytes=10_000)
        sim, fab, a, b = make_direct_pair(DcpTransport, cfg)
        flow = send_flow(sim, a, b, 30_000)
        drain(sim)
        assert flow.completed
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        # forge a late HO for an already-acked message
        from repro.net.packet import make_data_packet
        ho = make_data_packet(0, 1, flow_id=flow.flow_id, qpn=qp.peer_qpn,
                              src_qpn=qp.qpn, psn=0, msn=0, payload=1000,
                              mtu_payload=1000, msg_len_pkts=10,
                              msg_len_bytes=10_000, msg_offset_pkts=0,
                              dcp=True)
        ho.trim()
        ho.turn_around()
        before = a.stale_ho
        a._on_ho(qp, ho)
        assert a.stale_ho == before + 1
        assert st.retransq.host_len == 0  # nothing queued for retransmit

    def test_duplicate_emsn_ack_idempotent(self):
        sim, fab, a, b = make_direct_pair(DcpTransport)
        flow = send_flow(sim, a, b, 20_000)
        drain(sim)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        acked = st.acked_msn
        dup = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                       kind=PacketKind.ACK, emsn=acked, dcp=True)
        a._on_ack(qp, dup)
        assert st.acked_msn == acked
        assert qp.outstanding_bytes == 0

    def test_backoff_resets_on_progress(self):
        sim, fab, a, b = make_direct_pair(DcpTransport)
        flow = send_flow(sim, a, b, 20_000)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        st.backoff = 5
        drain(sim)
        assert flow.completed
        assert st.backoff == 0  # the completing ACK cleared it


class TestMalformedInput:
    def test_irn_survives_sack_for_unsent_psn(self):
        """A SACK naming a PSN beyond max_sent must be ignored, not crash."""
        sim, fab, a, b = make_direct_pair(IrnTransport)
        flow = send_flow(sim, a, b, 20_000)
        drain(sim)
        qp = list(a.qps.values())[0]
        st = a._send_state(qp)
        bogus = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                         kind=PacketKind.SACK, ack_psn=st.snd_una - 1,
                         sack_psn=st.max_sent + 50)
        a._on_sack(qp, bogus)  # must not raise
        assert not st.rtx_queue

    def test_packet_for_unknown_qpn_dropped(self):
        sim, fab, a, b = make_direct_pair(DcpTransport)
        flow = send_flow(sim, a, b, 5_000)
        from repro.net.packet import make_data_packet
        stray = make_data_packet(9, 1, flow_id=1, qpn=99999, src_qpn=1,
                                 psn=0, msn=0, payload=1000,
                                 mtu_payload=1000, msg_len_pkts=1,
                                 msg_len_bytes=1000, msg_offset_pkts=0,
                                 dcp=True)
        b.on_packet(stray)  # silently ignored (stale/destroyed QP)
        drain(sim)
        assert flow.completed
