"""Behavioral tests for the DCP transport — the paper's contribution."""

import pytest

from repro.core.dcp import DcpTransport
from repro.experiments.common import build_network
from repro.net.packet import DcpTag, PacketKind
from repro.rnic.base import RnicTransport, TransportConfig
from tests.conftest import drain, make_direct_pair, send_flow


def _lossy_net(loss=0.02, **over):
    defaults = dict(transport="dcp", topology="testbed", num_hosts=4,
                    cross_links=2, link_rate=10.0, loss_rate=loss, lb="ar",
                    seed=23)
    defaults.update(over)
    return build_network(**defaults)


def test_basic_transfer():
    sim, fab, a, b = make_direct_pair(DcpTransport)
    flow = send_flow(sim, a, b, 100_000)
    drain(sim)
    assert flow.completed
    assert flow.stats.retx_pkts_sent == 0
    assert flow.stats.timeouts == 0


def test_data_packets_are_dcp_tagged():
    sim, fab, a, b = make_direct_pair(DcpTransport)
    flow = send_flow(sim, a, b, 5_000)
    sim.step()  # execute the scheduled post_flow
    pkt = a.poll_tx()
    assert pkt.dcp_tag is DcpTag.DCP_DATA
    assert pkt.msn == 0
    assert pkt.sretry_no == 0
    assert pkt.msg_len_pkts == 5


def test_trims_recovered_precisely():
    """Every trim produces exactly one HO round trip and one retransmit."""
    net = _lossy_net(loss=0.02)
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    trims = net.fabric.switch_stats_sum("trimmed")
    assert trims > 0
    sender = net.transports[0]
    receiver = net.transports[2]
    assert receiver.ho_turned == trims
    # HO travel is lossless here, so the sender saw them all and
    # retransmitted precisely once per trim (minus re-trimmed ones).
    assert sender.ho_received == flow.stats.trims_seen == trims
    assert flow.stats.retx_pkts_sent == trims
    assert flow.stats.timeouts == 0
    assert flow.stats.dup_pkts_received == 0


def test_exactly_once_delivery():
    """The §4.5 'exactly once' property under loss + reordering."""
    net = _lossy_net(loss=0.05, lb="spray")
    flow = net.open_flow(0, 2, 400_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.rx_bytes == 400_000
    assert flow.stats.dup_pkts_received == 0


def test_order_tolerant_reception_no_spurious_retx():
    """R2: packet-level LB reordering alone causes zero retransmissions."""
    net = _lossy_net(loss=0.0, lb="spray", cross_links=4,
                     cross_port_rates={0: 10.0, 1: 10.0, 2: 10.0, 3: 2.5})
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert net.fabric.switch_stats_sum("trimmed") == 0
    assert flow.stats.retx_pkts_sent == 0


def test_rto_free_recovery():
    """R3: even heavy loss is recovered without a single RTO."""
    net = _lossy_net(loss=0.05)
    flows = [net.open_flow(0, 2, 200_000, 0),
             net.open_flow(1, 3, 200_000, 0)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)
    assert sum(f.stats.timeouts for f in flows) == 0


def test_multi_message_emsn_acks():
    """Flows split into messages; eMSN ACKs advance message by message."""
    cfg = TransportConfig(max_message_bytes=10_000)
    sim, fab, a, b = make_direct_pair(DcpTransport, cfg)
    flow = send_flow(sim, a, b, 95_000)
    drain(sim)
    assert flow.completed
    qp = list(a.qps.values())[0]
    assert qp.next_msn == 10  # 9 x 10 KB + 1 x 5 KB
    st = a._send_state(qp)
    assert st.acked_msn == 10


def test_out_of_order_message_completion():
    """A later message completing first must wait for eMSN ordering."""
    net = _lossy_net(loss=0.03,
                     transport_overrides={"max_message_bytes": 20_000})
    flow = net.open_flow(0, 2, 100_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    tracker = net.transports[2]._rcv[
        list(net.transports[2].qps.values())[0].qpn].tracker
    assert tracker.emsn == 5


def test_coarse_timeout_covers_broken_control_plane():
    """§4.5 fallback: kill HO delivery entirely; the coarse timer must
    still complete the flow via sRetryNo rounds."""
    cfg = TransportConfig(coarse_timeout_ns=200_000)
    sim, fab, a, b = make_direct_pair(DcpTransport, cfg)

    # Sabotage: receiver drops HO packets instead of turning them around.
    original = b._on_ho

    def black_hole(qp, packet):
        if not packet.ho_returned:
            return  # swallow the HO: control plane violated
        original(qp, packet)

    b._on_ho = black_hole

    # Trim every 10th packet by injecting trims at the "wire": simplest
    # is a direct link, so instead trim manually via a wrapper on a.nic.
    flow = send_flow(sim, a, b, 50_000)
    nic_link = a.nic.link
    count = [0]
    orig_deliver = nic_link.deliver

    def lossy_deliver(packet):
        if packet.kind is PacketKind.DATA:
            count[0] += 1
            if count[0] % 10 == 0 and count[0] <= 50:
                packet.trim()  # switch would trim; HO then black-holed
        orig_deliver(packet)

    nic_link.deliver = lossy_deliver
    drain(sim)
    assert flow.completed
    assert flow.stats.timeouts > 0  # recovered by the fallback, not HO


def test_ho_turnaround_swaps_and_returns():
    net = _lossy_net(loss=0.05)
    flow = net.open_flow(0, 2, 100_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert net.transports[2].ho_turned > 0
    assert net.transports[0].ho_received == net.transports[2].ho_turned


def test_retransq_batching_under_burst_loss():
    """A burst of trims is fetched in batches of <=16 per PCIe RTT."""
    net = _lossy_net(loss=0.10)
    flow = net.open_flow(0, 2, 300_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    tr = net.transports[0]
    st = tr._snd[list(tr.qps.values())[0].qpn]
    assert st.retransq.entries_written == tr.ho_received
    assert st.retransq.fetches >= 1
    # batching: strictly fewer fetches than entries whenever bursts occur
    if st.retransq.entries_written > 16:
        assert st.retransq.fetches < st.retransq.entries_written


def test_dcp_connects_many_flows():
    net = _lossy_net(loss=0.01)
    flows = [net.open_flow(i % 2, 2 + (i % 2), 50_000, i * 10_000)
             for i in range(10)]
    net.run_until_flows_done(max_events=40_000_000)
    assert all(f.completed for f in flows)


def test_ack_loss_tolerated():
    """DCP ACKs are droppable (tag 01); eMSN is cumulative so a later
    ACK or the coarse timer repairs the sender's view."""
    cfg = TransportConfig(coarse_timeout_ns=300_000, max_message_bytes=20_000)
    sim, fab, a, b = make_direct_pair(DcpTransport, cfg)
    flow = send_flow(sim, a, b, 100_000)
    # drop the first two ACKs on b's NIC
    dropped = [0]
    orig = b.nic.send_control

    def drop_some_acks(packet):
        if packet.kind is PacketKind.ACK and dropped[0] < 2:
            dropped[0] += 1
            return
        orig(packet)

    b.nic.send_control = drop_some_acks
    drain(sim)
    assert flow.completed
    assert dropped[0] == 2
    st = a._send_state(list(a.qps.values())[0])
    assert st.acked_msn == 5


def test_window_gates_retransmission_rate():
    """Challenge #2 of §4.3: the CC window regulates retransmissions."""
    from repro.cc.base import StaticWindowCc
    net = _lossy_net(loss=0.05)
    net.spec.cc = "window"
    flow = net.open_flow(0, 2, 200_000, 0)
    qp = net._pair_qps.get((0, 2))
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.stats.timeouts == 0
