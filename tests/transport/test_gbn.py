"""Behavioral tests for the Go-Back-N transport."""

from repro.rnic.base import RnicTransport, TransportConfig
from repro.rnic.gbn import GbnTransport
from tests.conftest import drain, make_direct_pair, send_flow


def test_basic_transfer_completes():
    sim, fab, a, b = make_direct_pair(GbnTransport)
    flow = send_flow(sim, a, b, 100_000)
    drain(sim)
    assert flow.completed
    assert flow.rx_bytes == 100_000
    assert flow.stats.retx_pkts_sent == 0
    assert flow.tx_complete_ns is not None
    assert flow.tx_complete_ns >= flow.rx_complete_ns


def test_single_byte_flow():
    sim, fab, a, b = make_direct_pair(GbnTransport)
    flow = send_flow(sim, a, b, 1)
    drain(sim)
    assert flow.completed


def test_non_mtu_multiple_size():
    sim, fab, a, b = make_direct_pair(GbnTransport)
    flow = send_flow(sim, a, b, 2_500)  # 2 full packets + 500 B
    drain(sim)
    assert flow.completed
    assert flow.stats.data_pkts_sent == 3


def test_many_flows_one_qp_pair_in_order():
    sim, fab, a, b = make_direct_pair(GbnTransport)
    qp, _ = RnicTransport.connect(a, b)
    flows = [send_flow(sim, a, b, 10_000, start_ns=i * 1000, qp=qp)
             for i in range(5)]
    drain(sim)
    assert all(f.completed for f in flows)
    ends = [f.rx_complete_ns for f in flows]
    assert ends == sorted(ends)  # in-order delivery per QP


def test_bidirectional_qps_independent():
    sim, fab, a, b = make_direct_pair(GbnTransport)
    f1 = send_flow(sim, a, b, 50_000)
    f2 = send_flow(sim, b, a, 50_000)
    drain(sim)
    assert f1.completed and f2.completed


def test_loss_recovered_by_nak_go_back_n():
    """Drop one packet in flight: receiver NAKs, sender rewinds."""
    from repro.experiments.common import build_network
    net = build_network(transport="gbn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.02,
                        lb="ecmp", seed=9)
    flow = net.open_flow(0, 2, 200_000, 0)
    net.run_until_flows_done(max_events=20_000_000)
    assert flow.completed
    assert flow.rx_bytes == 200_000
    assert flow.stats.retx_pkts_sent > 0
    # GBN retransmits everything after a lost packet: retx far exceeds
    # the number of actual losses (the paper's Fig 10 inefficiency).
    drops = net.fabric.switch_stats_sum("dropped_forced")
    assert flow.stats.retx_pkts_sent >= drops


def test_window_limits_outstanding():
    cfg = TransportConfig(window_bytes=5_000)
    sim, fab, a, b = make_direct_pair(GbnTransport, cfg, prop_delay_ns=50_000)
    flow = send_flow(sim, a, b, 50_000)
    # run until just after the first burst is on the wire
    sim.run(until=40_000)
    st = a._send_state(list(a.qps.values())[0])
    assert st.snd_nxt <= 5  # window/mtu packets
    drain(sim)
    assert flow.completed


def test_duplicate_detection():
    """A retransmission storm must not deliver duplicate payload."""
    from repro.experiments.common import build_network
    net = build_network(transport="gbn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.05,
                        lb="ecmp", seed=10)
    flow = net.open_flow(0, 2, 100_000, 0)
    net.run_until_flows_done(max_events=20_000_000)
    assert flow.completed
    assert flow.rx_bytes == 100_000  # exactly, never more


def test_rto_recovers_tail_loss():
    """If the final packet is lost there is no NAK: only the RTO saves us."""
    from repro.experiments.common import build_network
    net = build_network(transport="gbn", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.3,
                        lb="ecmp", seed=12)
    flow = net.open_flow(0, 2, 5_000, 0)
    net.run_until_flows_done(max_events=20_000_000)
    assert flow.completed
