"""Behavioral tests for the timeout-only transport."""

from repro.experiments.common import build_network
from repro.rnic.timeout import TimeoutTransport
from tests.conftest import drain, make_direct_pair, send_flow


def test_basic_transfer():
    sim, fab, a, b = make_direct_pair(TimeoutTransport)
    flow = send_flow(sim, a, b, 100_000)
    drain(sim)
    assert flow.completed
    assert flow.stats.timeouts == 0


def test_every_loss_costs_an_rto():
    net = build_network(transport="timeout", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.02,
                        lb="ecmp", seed=51)
    flow = net.open_flow(0, 2, 200_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.stats.timeouts > 0


def test_blind_retransmission_duplicates():
    """Without SACK the sender resends delivered packets too."""
    net = build_network(transport="timeout", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.05,
                        lb="ecmp", seed=52)
    flow = net.open_flow(0, 2, 100_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.stats.dup_pkts_received > 0
    assert flow.rx_bytes == 100_000  # accounting still exact


def test_order_tolerant_reception():
    """Spectrum-style OOO acceptance: reordering alone costs nothing."""
    net = build_network(transport="timeout", topology="testbed", num_hosts=4,
                        cross_links=2, link_rate=10.0, loss_rate=0.0,
                        lb="spray", seed=53)
    flow = net.open_flow(0, 2, 300_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert flow.stats.retx_pkts_sent == 0
    assert flow.stats.timeouts == 0


def test_rto_never_counts_as_coarse_timeout():
    """§4.5 accounting split: a regular RTO increments ``timeouts`` only.

    The coarse counter is reserved for crash-survival fallback timers
    (DCP's §4.5 timer, SDR's last-resort timer).  If any timer-heavy
    transport started routing plain RTOs through
    ``count_coarse_timeout``, the chaos campaign could no longer tell
    loss recovery apart from failure recovery.
    """
    net = build_network(transport="timeout", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.02,
                        lb="ecmp", seed=51)
    flow = net.open_flow(0, 2, 200_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.stats.timeouts > 0
    assert sum(t.stats.coarse_timeouts for t in net.transports) == 0


def test_coarse_timeout_also_counts_as_timeout():
    """``count_coarse_timeout`` must ride through ``count_timeout`` so
    ``timeouts >= coarse_timeouts`` holds for every transport (the chaos
    report and EXPERIMENTS.md both rely on the superset relation)."""
    from repro.rnic.base import Flow
    sim, fab, a, b = make_direct_pair(TimeoutTransport)
    flow = Flow(0, 1, 1000, 0)
    a.count_coarse_timeout(flow)
    assert a.stats.coarse_timeouts == 1
    assert a.stats.timeouts == 1
    assert flow.stats.timeouts == 1


def test_sdr_holes_repair_without_any_timeout_counter():
    """SDR's per-hole timers are *not* RTOs: under plain loss it must
    retransmit the holes while leaving both ``timeouts`` and
    ``coarse_timeouts`` untouched — the counters DCP's §4.5 accounting
    (and fig17's interpretation) depend on."""
    net = build_network(transport="sdr", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.02,
                        lb="ecmp", seed=51)
    flow = net.open_flow(0, 2, 200_000, 0)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.stats.retx_pkts_sent > 0        # losses really happened
    assert flow.stats.timeouts == 0
    assert sum(t.stats.coarse_timeouts for t in net.transports) == 0


def test_goodput_collapses_vs_dcp():
    """Fig 17's worst line: timeout-only much slower than DCP under loss."""
    results = {}
    for scheme in ("timeout", "dcp"):
        net = build_network(transport=scheme, topology="testbed",
                            num_hosts=4, cross_links=1, link_rate=10.0,
                            loss_rate=0.02, lb="ecmp", seed=54)
        f = net.open_flow(0, 2, 200_000, 0)
        net.run_until_flows_done(max_events=40_000_000)
        assert f.completed
        results[scheme] = f.fct_ns()
    assert results["timeout"] > 2 * results["dcp"]
