"""Behavioral tests for the MP-RDMA multipath transport."""

from repro.experiments.common import build_network
from repro.rnic.mp_rdma import MpRdmaTransport
from tests.conftest import drain, make_direct_pair, send_flow


def test_basic_transfer():
    sim, fab, a, b = make_direct_pair(MpRdmaTransport)
    flow = send_flow(sim, a, b, 100_000)
    drain(sim)
    assert flow.completed
    assert flow.rx_bytes == 100_000


def test_packets_spread_over_virtual_paths():
    """Per-packet entropy cycling -> ECMP spreads one QP across paths."""
    net = build_network(transport="mp_rdma", topology="testbed", num_hosts=4,
                        cross_links=4, link_rate=10.0, lb="ecmp", seed=31)
    flow = net.open_flow(0, 2, 500_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    sw1 = net.fabric.switches[0]
    cross_ports = sw1.ports[2:]  # 2 hosts + 4 cross links
    used = [p for p in cross_ports if p.tx_packets > 50]
    assert len(used) >= 3  # a GBN flow would stick to exactly one


def test_adaptive_window_reacts_to_ecn():
    """Marked ACKs shrink the window; clean ACKs grow it back."""
    sim, fab, a, b = make_direct_pair(MpRdmaTransport)
    flow = send_flow(sim, a, b, 30_000)
    drain(sim)
    qp = list(a.qps.values())[0]
    st = a._send_state(qp)
    grown = st.cwnd_pkts
    from repro.net.packet import PacketKind, make_ack
    ack = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                   kind=PacketKind.ACK, ack_psn=29)
    ack.ecn_ce = True
    a._on_ack(qp, ack)
    assert st.cwnd_pkts < grown


def test_bounded_ooo_window_drops_and_naks():
    """Packets beyond the OOO bitmap are dropped with a NAK (the §6.2
    'fails to control the OOO degree' behaviour)."""
    from repro.rnic.base import TransportConfig
    sim, fab, a, b = make_direct_pair(MpRdmaTransport)
    b.ooo_window = 4
    qp_a = list(a.qps.values()) or None
    flow = send_flow(sim, a, b, 50_000)
    qp = list(a.qps.values())[0]
    peer_qp = list(b.qps.values())[0]
    # hand-deliver a packet far beyond the OOO window
    from repro.net.packet import make_data_packet
    far = make_data_packet(0, 1, flow_id=flow.flow_id, qpn=peer_qp.qpn,
                           src_qpn=qp.qpn, psn=40, msn=0, payload=1000,
                           mtu_payload=1000, msg_len_pkts=50,
                           msg_len_bytes=50_000, msg_offset_pkts=40,
                           dcp=False)
    b._on_data(peer_qp, far)
    assert b.ooo_drops == 1
    drain(sim)
    assert flow.completed


def test_lossless_fabric_no_retx():
    net = build_network(transport="mp_rdma", topology="clos", num_hosts=8,
                        num_leaves=2, num_spines=2, link_rate=10.0,
                        lb="ecmp", seed=33)
    assert all(sw.pfc is not None for sw in net.fabric.switches)
    flows = [net.open_flow(i, 7 - i, 100_000, 0) for i in range(3)]
    net.run_until_flows_done(max_events=30_000_000)
    assert all(f.completed for f in flows)
    assert net.fabric.switch_stats_sum("dropped_congestion") == 0


def test_nak_triggers_go_back_n():
    """MP-RDMA recovery is GBN: a NAK rewinds the send pointer."""
    sim, fab, a, b = make_direct_pair(MpRdmaTransport)
    flow = send_flow(sim, a, b, 50_000)
    sim.run(max_events=200)
    qp = list(a.qps.values())[0]
    st = a._send_state(qp)
    sent_before = st.snd_nxt
    assert sent_before > 3
    from repro.net.packet import PacketKind, make_ack
    a.nic.pause()  # keep the rewind observable (no instant resend)
    rewind_to = max(st.snd_una, 2)
    nak = make_ack(1, 0, flow_id=-1, qpn=qp.qpn, src_qpn=qp.peer_qpn,
                   kind=PacketKind.NAK, ack_psn=rewind_to)
    a._on_nak(qp, nak)
    assert st.snd_nxt == rewind_to
    assert st.snd_nxt <= sent_before
    a.nic.resume()
    drain(sim)
    assert flow.completed
