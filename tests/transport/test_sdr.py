"""Behavioral tests for the SDR selective-repeat transport.

Covers the three mechanisms that make SDR a distinct point on the
reliability frontier — the ack vector, the bounded reorder buffer, and
per-hole timers — plus the §4.5 coarse fallback and Swift integration.
"""

from __future__ import annotations

from repro.experiments.common import build_network
from repro.net.packet import PacketKind, make_data_packet
from repro.rnic.base import Flow, RnicTransport, TransportConfig
from repro.rnic.sdr import SdrTransport
from tests.conftest import drain, make_direct_pair, send_flow


def test_clean_transfer_no_recovery():
    sim, fab, a, b = make_direct_pair(SdrTransport)
    flow = send_flow(sim, a, b, 100_000)
    drain(sim)
    assert flow.completed
    assert flow.stats.retx_pkts_sent == 0
    assert flow.stats.timeouts == 0
    assert a.stats.coarse_timeouts == 0


def test_loss_repaired_by_holes_not_rtos():
    """The headline property: under plain loss SDR retransmits exactly
    its holes — no RTO, no coarse fallback, no window blast."""
    net = build_network(transport="sdr", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.05,
                        lb="ecmp", seed=61)
    flow = net.open_flow(0, 2, 300_000, 0)
    net.run_until_flows_done(max_events=60_000_000)
    assert flow.completed
    assert flow.rx_bytes == 300_000
    assert flow.stats.retx_pkts_sent > 0
    assert flow.stats.timeouts == 0
    assert sum(t.stats.coarse_timeouts for t in net.transports) == 0


# ----------------------------------------------------------- ack vector
def _recv_harness(config: TransportConfig | None = None):
    """B-side receive harness: crafted data in, captured acks out."""
    sim, fab, a, b = make_direct_pair(SdrTransport, config=config)
    qp_a, qp_b = RnicTransport.connect(a, b)
    flow = Flow(0, 1, 10_000, 0)
    b.expect_flow(flow)
    acks = []
    b.nic.send_control = acks.append
    mtu = b.config.mtu_payload

    def push(psn: int) -> None:
        b._on_data(qp_b, make_data_packet(
            0, 1, flow_id=flow.flow_id, qpn=qp_b.qpn, src_qpn=qp_a.qpn,
            psn=psn, msn=0, payload=mtu, mtu_payload=mtu, msg_len_pkts=10,
            msg_len_bytes=10 * mtu, msg_offset_pkts=psn, dcp=False,
            entropy=0))

    return sim, b, flow, acks, push


def test_ack_vector_reports_every_buffered_hole():
    sim, b, flow, acks, push = _recv_harness()
    mtu = b.config.mtu_payload

    push(1)                                   # hole at 0
    assert acks[-1].kind == PacketKind.SACK
    assert acks[-1].ack_psn == -1             # nothing cumulative yet
    assert acks[-1].sack_bitmap == 0b10       # bit i = PSN ack+1+i

    push(3)                                   # second hole at 2
    assert acks[-1].sack_bitmap == 0b1010     # one ack, whole window view

    push(0)                                   # fills hole 0: ePSN -> 2
    assert acks[-1].ack_psn == 1
    assert acks[-1].sack_bitmap == 0b10       # PSN 3 rebased to bit 1
    assert flow.rx_bytes == 3 * mtu           # OOO data was delivered

    push(2)                                   # fills the last hole
    assert acks[-1].kind == PacketKind.ACK
    assert acks[-1].ack_psn == 3
    assert acks[-1].sack_bitmap == 0
    assert flow.rx_bytes == 4 * mtu


def test_duplicates_acked_but_not_redelivered():
    sim, b, flow, acks, push = _recv_harness()
    mtu = b.config.mtu_payload
    push(0)
    push(1)
    push(1)                                   # duplicate
    assert flow.rx_bytes == 2 * mtu           # exactly-once
    assert flow.stats.dup_pkts_received == 1
    assert acks[-1].ack_psn == 1              # but still acked (sender view)


def test_reorder_bound_drops_and_never_acks():
    cfg = TransportConfig(sdr_reorder_window_pkts=4)
    sim, b, flow, acks, push = _recv_harness(cfg)

    push(4)                                   # epsn=0, bound=4: too far
    assert b.stats.ooo_drops == 1
    assert flow.rx_bytes == 0                 # not delivered...
    assert acks[-1].sack_bitmap == 0          # ...and not acknowledged

    push(3)                                   # inside the bound: buffered
    assert b.stats.ooo_drops == 1
    assert acks[-1].sack_bitmap == 0b1000
    assert flow.rx_bytes == b.config.mtu_payload


def test_reorder_state_never_exceeds_bound():
    cfg = TransportConfig(sdr_reorder_window_pkts=4)
    sim, b, flow, acks, push = _recv_harness(cfg)
    for psn in (1, 2, 3, 4, 5, 6):            # 4..6 are beyond the bound
        push(psn)
        st = b._rcv[next(iter(b._rcv))]
        assert len(st.ooo) <= 4
    assert b.stats.ooo_drops == 3


# ------------------------------------------------------- coarse fallback
def test_coarse_fires_on_dead_path_then_recovers():
    """Holes *and* their repairs die on a downed cable: only the §4.5
    coarse fallback can carry the flow across, and it must be counted
    in ``coarse_timeouts`` exactly like DCP's."""
    net = build_network(
        transport="sdr", topology="direct", num_hosts=2, link_rate=10.0,
        seed=62, transport_overrides={"coarse_timeout_ns": 200_000,
                                      "rto_low_ns": 100_000})
    flow = net.open_flow(0, 1, 200_000, 0)
    link = net.hosts[0].nic.link              # the data direction

    def down() -> None:
        link.up = False

    def up() -> None:
        link.up = True

    net.sim.schedule(50_000, down)
    net.sim.schedule(1_050_000, up)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.rx_bytes == 200_000
    coarse = sum(t.stats.coarse_timeouts for t in net.transports)
    assert coarse >= 1                        # fallback did the crossing
    assert flow.stats.timeouts >= coarse      # superset accounting holds


# ---------------------------------------------------------------- swift
def test_swift_cc_rides_on_sdr():
    net = build_network(transport="sdr", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.01,
                        lb="ecmp", cc="swift", seed=63)
    flow = net.open_flow(0, 2, 200_000, 0)
    net.run_until_flows_done(max_events=60_000_000)
    assert flow.completed
    ccs = [qp.cc for t in net.transports for qp in t.qps.values()]
    assert any(getattr(cc, "rtt_samples", 0) > 0 for cc in ccs)
