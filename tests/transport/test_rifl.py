"""Behavioral tests for RIFL: hop-level repair, loss-free end to end.

The contract under test: with every link wrapped by a
:class:`~repro.net.rifl.RiflShim`, the end-to-end transport never
observes loss — corruption is repaired at the hop (``hop_retx``), down
links hold frames instead of dropping them, and the RTO retained from
:class:`~repro.rnic.timeout.TimeoutTransport` is a crash fallback that
must never fire from wire corruption.
"""

from __future__ import annotations

from repro.experiments.common import build_network


def _shims(net):
    return net.fabric.rifl_shims


def test_clean_transfer():
    net = build_network(transport="rifl", topology="direct", num_hosts=2,
                        link_rate=10.0, seed=71)
    flow = net.open_flow(0, 1, 100_000, 0)
    net.run_until_flows_done(max_events=30_000_000)
    assert flow.completed
    assert flow.stats.retx_pkts_sent == 0
    assert sum(s.stats.hop_retx for s in _shims(net)) == 0
    assert sum(s.stats.delivered for s in _shims(net)) > 0


def test_corruption_repaired_at_hop_never_end_to_end():
    """5% forced loss: hop retransmissions absorb all of it — zero
    end-to-end retransmissions, zero RTOs, zero fabric drops."""
    net = build_network(transport="rifl", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.05,
                        lb="ecmp", seed=72)
    flows = [net.open_flow(0, 2, 150_000, 0), net.open_flow(1, 3, 150_000, 0)]
    net.run_until_flows_done(max_events=60_000_000)
    for flow in flows:
        assert flow.completed
        assert flow.rx_bytes == flow.size_bytes
        assert flow.stats.retx_pkts_sent == 0     # e2e never repairs
        assert flow.stats.timeouts == 0           # RTO never fires
    assert sum(s.stats.hop_retx for s in _shims(net)) > 0
    # The loss moved into the shims: neither links nor switches drop.
    assert sum(s.link.stats.dropped_loss for s in _shims(net)) == 0
    assert net.fabric.switch_stats_sum("dropped_forced") == 0


def test_down_link_holds_frames_instead_of_dropping():
    """A dark cable buffers the hop sender's frames; when it returns the
    backlog flushes and the flow finishes with no e2e timeout."""
    net = build_network(transport="rifl", topology="direct", num_hosts=2,
                        link_rate=10.0, seed=73)
    flow = net.open_flow(0, 1, 200_000, 0)
    link = net.hosts[0].nic.link

    def down() -> None:
        link.up = False

    def up() -> None:
        link.up = True

    net.sim.schedule(50_000, down)
    net.sim.schedule(550_000, up)
    net.run_until_flows_done(max_events=40_000_000)
    assert flow.completed
    assert flow.rx_bytes == 200_000
    held = sum(s.stats.held_link_down for s in _shims(net))
    assert held > 0
    # The shim intercepts delivery before the link's own down check, so
    # nothing is ever discarded as link_down under RIFL.
    assert sum(s.link.stats.dropped_link_down for s in _shims(net)) == 0


def test_swift_rtt_sees_hop_repair_inflation():
    """Hop retransmissions inflate the sampled RTT — exactly the signal
    a delay-based CC should see on a dirty link — without breaking
    delivery."""
    net = build_network(transport="rifl", topology="testbed", num_hosts=4,
                        cross_links=1, link_rate=10.0, loss_rate=0.02,
                        lb="ecmp", cc="swift", seed=74)
    flow = net.open_flow(0, 2, 200_000, 0)
    net.run_until_flows_done(max_events=60_000_000)
    assert flow.completed
    ccs = [qp.cc for t in net.transports for qp in t.qps.values()]
    assert any(getattr(cc, "rtt_samples", 0) > 0 for cc in ccs)
