"""Behavioral tests for the software TCP comparison stack."""

from repro.analysis.fct import goodput_gbps
from repro.tcpstack.tcp import TcpTransport
from tests.conftest import drain, make_direct_pair, send_flow


def test_basic_transfer():
    sim, fab, a, b = make_direct_pair(TcpTransport)
    flow = send_flow(sim, a, b, 200_000)
    drain(sim)
    assert flow.completed
    assert flow.rx_bytes == 200_000


def test_host_overhead_caps_throughput():
    """The software stack cannot reach line rate (Fig 8's point)."""
    sim, fab, a, b = make_direct_pair(TcpTransport, rate=100.0)
    flow = send_flow(sim, a, b, 2_000_000)
    drain(sim)
    assert flow.completed
    # 450 ns/packet CPU floor => < ~18 Gbps for 1 KB segments
    assert goodput_gbps(flow) < 25.0


def test_stack_latency_dominates_small_messages():
    sim, fab, a, b = make_direct_pair(TcpTransport, rate=100.0,
                                      prop_delay_ns=500)
    flow = send_flow(sim, a, b, 64)
    drain(sim)
    assert flow.completed
    assert flow.fct_ns() > 8_000  # >> the 0.5 us RDMA latency


def test_slow_start_growth():
    sim, fab, a, b = make_direct_pair(TcpTransport)
    flow = send_flow(sim, a, b, 500_000)
    drain(sim)
    st = a._send_state(list(a.qps.values())[0])
    assert st.cwnd > 10.0  # grew beyond IW10


def test_fast_retransmit_on_triple_dupack():
    sim, fab, a, b = make_direct_pair(TcpTransport)
    flow = send_flow(sim, a, b, 100_000)
    link = a.nic.link
    orig = link.deliver
    state = {"dropped": False}

    def drop_one(packet):
        from repro.net.packet import PacketKind
        if (packet.kind is PacketKind.TCP_DATA and packet.psn == 20
                and not state["dropped"]):
            state["dropped"] = True
            return
        orig(packet)

    link.deliver = drop_one
    drain(sim)
    assert flow.completed
    assert state["dropped"]
    assert flow.stats.retx_pkts_sent >= 1
    assert flow.stats.timeouts == 0  # fast retransmit, not RTO


def test_rto_fallback():
    sim, fab, a, b = make_direct_pair(TcpTransport)
    flow = send_flow(sim, a, b, 3_000)
    link = a.nic.link
    orig = link.deliver
    state = {"dropped": False}

    def drop_tail(packet):
        from repro.net.packet import PacketKind
        if (packet.kind is PacketKind.TCP_DATA and packet.psn == 2
                and not state["dropped"]):
            state["dropped"] = True
            return
        orig(packet)

    link.deliver = drop_tail
    drain(sim)
    assert flow.completed
    assert flow.stats.timeouts >= 1  # tail loss with no dupacks -> RTO
